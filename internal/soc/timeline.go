package soc

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteTimeline renders a run's event stream as per-link ASCII lanes, the
// quick-look waveform a validator scans before opening a real viewer. One
// row per (src->dst) interface, one column per event slot, message
// initials in the cells; dropped events render as 'x', misrouted as '!',
// corrupted as '*'. maxEvents caps the width (0 = 80).
func WriteTimeline(w io.Writer, res *Result, maxEvents int) error {
	if maxEvents <= 0 {
		maxEvents = 80
	}
	events := res.Events
	if len(events) > maxEvents {
		events = events[:maxEvents]
	}

	links := map[string][]rune{}
	var order []string
	laneOf := func(ev Event) string {
		key := ev.Src + "->" + ev.Dst
		if _, ok := links[key]; !ok {
			links[key] = make([]rune, len(events))
			for i := range links[key] {
				links[key][i] = '.'
			}
			order = append(order, key)
		}
		return key
	}
	for i, ev := range events {
		lane := laneOf(ev)
		c := rune(ev.Msg.Name[0])
		switch {
		case ev.Dropped:
			c = 'x'
		case ev.Misrouted:
			c = '!'
		case ev.Corrupted:
			c = '*'
		}
		links[lane][i] = c
	}
	sort.Strings(order)

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "timeline: %d of %d events (column = emission order; x dropped, ! misrouted, * corrupted)\n",
		len(events), len(res.Events))
	width := 0
	for _, lane := range order {
		if len(lane) > width {
			width = len(lane)
		}
	}
	for _, lane := range order {
		fmt.Fprintf(bw, "  %-*s %s\n", width, lane, string(links[lane]))
	}
	if len(res.Symptoms) > 0 {
		fmt.Fprintf(bw, "symptoms: %d, first: %s\n", len(res.Symptoms), res.Symptoms[0])
	} else {
		fmt.Fprintln(bw, "symptoms: none")
	}
	return bw.Flush()
}

// Package soc is a transaction-level, discrete-event SoC simulator: the
// testbed substrate standing in for the OpenSPARC T2 RTL of the paper's
// evaluation. IPs exchange the messages of concurrently executing indexed
// flow instances under the atomic-state mutex semantics of the interleaved
// flow; every message emission is a cycle-stamped event on an IP-pair
// interface. Fault injectors perturb events (wrong command, corrupt data,
// dropped or misrouted messages), and symptom detection reports hangs and
// bad-trap failures exactly the way a regression testbench would.
//
// The simulator is deterministic for a given seed: scheduling uses a seeded
// PRNG and message payloads are derived from (message, index, occurrence,
// seed) hashes, so a golden and a buggy run can be diffed occurrence by
// occurrence to decide which messages a bug affects (the paper's bug
// coverage metric, Table 5).
package soc

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"tracescale/internal/flow"
	"tracescale/internal/obs"
)

// Event is one message emission on an IP-pair interface.
type Event struct {
	Cycle uint64
	Seq   int // global emission order
	Msg   flow.IndexedMsg
	Src   string
	Dst   string
	Data  uint64
	// Occurrence numbers this emission among all emissions of the same
	// indexed message in the run (0-based).
	Occurrence int
	// Dropped marks an emission the injector suppressed: it never reached
	// Dst, the producing instance wedges, and monitors do not see it.
	Dropped bool
	// Misrouted marks an emission delivered to the wrong IP.
	Misrouted bool
	// Corrupted marks a payload the injector altered.
	Corrupted bool
	// Bug identifies the injected bug that perturbed this event (0 = none).
	Bug int
}

// Outcome is an injector's verdict on an event.
type Outcome struct {
	Drop     bool
	Misroute string // non-empty: deliver to this IP instead
	XorMask  uint64 // non-zero: flip these payload bits
	Delay    uint64 // postpone delivery by this many cycles
	Bug      int    // id of the bug that fired
}

// Injector perturbs events in flight. Implementations must be
// deterministic given the event and PRNG.
type Injector interface {
	Apply(ev Event, rng *rand.Rand) Outcome
}

// Launch schedules one indexed flow instance to start at a given cycle.
type Launch struct {
	Flow  *flow.Flow
	Index int
	Start uint64
}

// Scenario is a usage scenario: a named set of launches (Table 1's rows).
type Scenario struct {
	Name     string
	Launches []Launch
}

// Repeat returns n launches of f indexed from firstIndex, starting stride
// cycles apart. It is the standard way to build long-running scenarios.
func Repeat(f *flow.Flow, n, firstIndex int, start, stride uint64) []Launch {
	out := make([]Launch, n)
	for i := range out {
		out[i] = Launch{Flow: f, Index: firstIndex + i, Start: start + uint64(i)*stride}
	}
	return out
}

// DataGen produces the payload of one message occurrence. It must be a
// pure function of its arguments so golden and buggy runs agree on
// unperturbed payloads.
type DataGen func(m flow.Message, index, occurrence int, seed int64) uint64

// DefaultDataGen derives payloads from an FNV-1a hash of the occurrence
// coordinates, masked to the message width.
func DefaultDataGen(m flow.Message, index, occurrence int, seed int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d/%d/%d", m.Name, index, occurrence, seed)
	v := h.Sum64()
	if m.Width < 64 {
		v &= (uint64(1) << uint(m.Width)) - 1
	}
	return v
}

// Link identifies one directed IP-pair interface.
type Link struct {
	Src, Dst string
}

// Config parameterizes a simulation run.
type Config struct {
	Seed int64
	// MaxCycles aborts the run (hang detection) when exceeded. Default
	// 10,000,000.
	MaxCycles uint64
	// MinLatency and MaxLatency bound the per-transition delay in cycles
	// (defaults 1 and 8).
	MinLatency, MaxLatency uint64
	// Injectors perturb events in order.
	Injectors []Injector
	// Data overrides payload generation (default DefaultDataGen).
	Data DataGen
	// Credits bounds the in-flight messages per link (credit-based flow
	// control, as on T2's PIO paths). Links absent from the map are
	// unconstrained. A message consumes one credit at emission; the credit
	// frees CreditDelay cycles after delivery. Dropped and misrouted
	// messages never return their credit — injected faults leak credits
	// exactly as they do in silicon.
	Credits map[Link]int
	// CreditDelay is the consumer processing time before a credit frees
	// (default 4).
	CreditDelay uint64
	// Ports bounds concurrent emissions per source IP: an IP listed here
	// can have at most that many messages in flight at once, serializing
	// the flows that share it. IPs absent from the map are unconstrained.
	// Unlike credits, a port always frees PortDelay cycles after emission
	// (the producer moves on even if the message is lost downstream).
	Ports map[string]int
	// PortDelay is the producer occupancy per emission (default 2).
	PortDelay uint64
	// Obs receives run metrics (soc.cycles, soc.events.*, per-link
	// soc.credit.stall_cycles.*) and a structured run summary. Nil — the
	// default — disables instrumentation entirely; the simulator core pays
	// no per-event cost either way, because counters are aggregated from
	// the Result and stall attribution only runs when the registry is set.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxCycles == 0 {
		c.MaxCycles = 10_000_000
	}
	if c.MinLatency == 0 {
		c.MinLatency = 1
	}
	if c.MaxLatency < c.MinLatency {
		c.MaxLatency = c.MinLatency
	}
	if c.Data == nil {
		c.Data = DefaultDataGen
	}
	if c.CreditDelay == 0 {
		c.CreditDelay = 4
	}
	if c.PortDelay == 0 {
		c.PortDelay = 2
	}
	return c
}

// SymptomKind classifies observed failures.
type SymptomKind int

const (
	// Hang: a flow instance never completed (dropped/misrouted message,
	// deadlock, or starvation past MaxCycles).
	Hang SymptomKind = iota
	// BadTrap: an instance completed having consumed corrupted data — the
	// testbench's "FAIL: Bad Trap".
	BadTrap
)

func (k SymptomKind) String() string {
	switch k {
	case Hang:
		return "hang"
	case BadTrap:
		return "bad-trap"
	default:
		return fmt.Sprintf("SymptomKind(%d)", int(k))
	}
}

// Symptom is one observed failure of the run.
type Symptom struct {
	Kind  SymptomKind
	Cycle uint64
	Flow  string
	Index int
	// Msg is the last message the failing instance emitted (the traced
	// message in which the symptom is observed), if any.
	Msg flow.IndexedMsg
}

func (s Symptom) String() string {
	return fmt.Sprintf("FAIL: %s flow=%s index=%d cycle=%d last=%s", s.Kind, s.Flow, s.Index, s.Cycle, s.Msg)
}

// Result is the outcome of a simulation run.
type Result struct {
	// Events lists every emission in order, including dropped ones.
	Events []Event
	// Symptoms lists detected failures (empty for a passing run).
	Symptoms []Symptom
	// EndCycle is the cycle at which the run finished or was aborted.
	EndCycle uint64
	// Completed counts instances that reached a stop state.
	Completed int
	// Wedged counts instances stalled forever by an injected fault.
	Wedged int
}

// Delivered returns the events that actually reached a destination IP —
// what interface monitors can observe.
func (r *Result) Delivered() []Event {
	out := make([]Event, 0, len(r.Events))
	for _, e := range r.Events {
		if !e.Dropped {
			out = append(out, e)
		}
	}
	return out
}

// Passed reports whether the run finished without symptoms.
func (r *Result) Passed() bool { return len(r.Symptoms) == 0 }

type instance struct {
	launch   Launch
	state    int
	readyAt  uint64
	done     bool
	wedged   bool
	poisoned bool
	lastMsg  flow.IndexedMsg
	hasMsg   bool
}

// poisonMask is the payload perturbation a poisoned instance applies to
// every message it emits after consuming corrupted data: wrong values
// propagate through the rest of the transaction, as they would in silicon.
// The mask is a pure function of the instance so golden/buggy diffing
// stays occurrence-exact, and is never zero.
func poisonMask(f *flow.Flow, index int, width int, seed int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "poison/%s/%d/%d", f.Name(), index, seed)
	v := h.Sum64() | 1
	if width < 64 {
		v &= (uint64(1) << uint(width)) - 1
		if v == 0 {
			v = 1
		}
	}
	return v
}

// Run executes the scenario. It fails on an empty scenario or illegally
// indexed launches.
func Run(sc Scenario, cfg Config) (*Result, error) {
	if len(sc.Launches) == 0 {
		return nil, errors.New("soc: scenario has no launches")
	}
	insts := make([]flow.Instance, len(sc.Launches))
	for i, l := range sc.Launches {
		insts[i] = flow.Instance{Flow: l.Flow, Index: l.Index}
	}
	if !flow.LegallyIndexed(insts) {
		return nil, errors.New("soc: launches are not legally indexed (Definition 4)")
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	run := make([]*instance, len(sc.Launches))
	for i, l := range sc.Launches {
		if len(l.Flow.Init()) != 1 {
			return nil, fmt.Errorf("soc: flow %q must have exactly one initial state", l.Flow.Name())
		}
		run[i] = &instance{launch: l, state: l.Flow.Init()[0], readyAt: l.Start}
	}

	res := &Result{}
	occ := make(map[flow.IndexedMsg]int)
	var cycle uint64

	// Credit-based flow control state. A constrained link's credit is
	// consumed at emission and freed CreditDelay cycles after delivery.
	credits := make(map[Link]int, len(cfg.Credits))
	for l, c := range cfg.Credits {
		credits[l] = c
	}
	constrained := func(l Link) bool {
		_, ok := cfg.Credits[l]
		return ok
	}
	ports := make(map[string]int, len(cfg.Ports))
	for ip, c := range cfg.Ports {
		ports[ip] = c
	}
	portConstrained := func(ip string) bool {
		_, ok := cfg.Ports[ip]
		return ok
	}
	type release struct {
		link Link
		ip   string // non-empty for port releases
		at   uint64
	}
	var releases []release
	freeDue := func(now uint64) {
		kept := releases[:0]
		for _, r := range releases {
			if r.at <= now {
				if r.ip != "" {
					ports[r.ip]++
				} else {
					credits[r.link]++
				}
			} else {
				kept = append(kept, r)
			}
		}
		releases = kept
	}
	// creditableOuts returns the edge indices the instance could fire now
	// given link credits. Instances at out-degree-zero states report a nil
	// slice but creditable=true (they complete when picked).
	creditableOuts := func(in *instance, buf []int) ([]int, bool) {
		f := in.launch.Flow
		outs := f.Out(in.state)
		if len(outs) == 0 {
			return nil, true
		}
		buf = buf[:0]
		for _, ei := range outs {
			m := f.Message(f.Edges()[ei].Msg)
			l := Link{m.Src, m.Dst}
			if constrained(l) && credits[l] <= 0 {
				continue
			}
			if portConstrained(m.Src) && ports[m.Src] <= 0 {
				continue
			}
			buf = append(buf, ei)
		}
		return buf, len(buf) > 0
	}

	var outBuf, pickBuf []int
	for {
		freeDue(cycle)
		// An instance in an atomic state holds the global mutex: only it
		// may move (flow.Builder guarantees at most one can be atomic).
		holder := -1
		for i, in := range run {
			if !in.done && !in.wedged && in.launch.Flow.IsAtomic(in.state) {
				holder = i
				break
			}
		}
		// Collect instances that can fire at the current cycle.
		var ready []int
		for i, in := range run {
			if in.done || in.wedged || in.readyAt > cycle {
				continue
			}
			if holder >= 0 && holder != i {
				continue
			}
			if _, ok := creditableOuts(in, outBuf); ok {
				ready = append(ready, i)
			}
		}
		if len(ready) == 0 {
			// Advance to the next event: a future readyAt of a mutex-legal
			// instance or a credit release.
			next := ^uint64(0)
			for i, in := range run {
				if in.done || in.wedged {
					continue
				}
				if holder >= 0 && holder != i {
					continue
				}
				if in.readyAt > cycle && in.readyAt < next {
					next = in.readyAt
				}
			}
			for _, r := range releases {
				if r.at > cycle && r.at < next {
					next = r.at
				}
			}
			if next == ^uint64(0) {
				break // all done, or deadlocked (wedged mutex holder / leaked credits)
			}
			if cfg.Obs != nil {
				// Attribute the idle gap to the flow-control resources that
				// caused it: every time-ready, mutex-legal instance whose
				// outgoing edges are all blocked stalls (next-cycle) cycles
				// on each blocking link or port.
				delta := int64(next - cycle)
				for i, in := range run {
					if in.done || in.wedged || in.readyAt > cycle {
						continue
					}
					if holder >= 0 && holder != i {
						continue
					}
					f := in.launch.Flow
					for _, ei := range f.Out(in.state) {
						m := f.Message(f.Edges()[ei].Msg)
						l := Link{m.Src, m.Dst}
						if constrained(l) && credits[l] <= 0 {
							cfg.Obs.Add("soc.credit.stall_cycles", delta)
							cfg.Obs.Add("soc.credit.stall_cycles."+l.Src+"->"+l.Dst, delta)
						}
						if portConstrained(m.Src) && ports[m.Src] <= 0 {
							cfg.Obs.Add("soc.port.stall_cycles", delta)
							cfg.Obs.Add("soc.port.stall_cycles."+m.Src, delta)
						}
					}
				}
			}
			cycle = next
			if cycle > cfg.MaxCycles {
				break
			}
			continue
		}
		if cycle > cfg.MaxCycles {
			break
		}

		in := run[ready[rng.Intn(len(ready))]]
		f := in.launch.Flow
		outs, _ := creditableOuts(in, pickBuf)
		if len(outs) == 0 {
			// Stop state with no successors (the common case) — finished.
			in.done = true
			continue
		}
		edge := f.Edges()[outs[rng.Intn(len(outs))]]
		m := f.Message(edge.Msg)
		im := flow.IndexedMsg{Name: m.Name, Index: in.launch.Index}
		ev := Event{
			Cycle:      cycle,
			Seq:        len(res.Events),
			Msg:        im,
			Src:        m.Src,
			Dst:        m.Dst,
			Data:       cfg.Data(m, in.launch.Index, occ[im], cfg.Seed),
			Occurrence: occ[im],
		}
		occ[im]++
		if in.poisoned {
			// Corrupted state propagates: everything this instance emits
			// downstream of the corruption carries wrong data.
			ev.Data ^= poisonMask(f, in.launch.Index, m.Width, cfg.Seed)
			ev.Corrupted = true
		}
		for _, inj := range cfg.Injectors {
			out := inj.Apply(ev, rng)
			if out.Bug != 0 {
				ev.Bug = out.Bug
			}
			if out.XorMask != 0 {
				ev.Data ^= out.XorMask
				ev.Corrupted = true
			}
			if out.Delay > 0 {
				ev.Cycle += out.Delay
			}
			if out.Misroute != "" && out.Misroute != ev.Dst {
				ev.Dst = out.Misroute
				ev.Misrouted = true
			}
			if out.Drop {
				ev.Dropped = true
			}
		}
		res.Events = append(res.Events, ev)
		in.lastMsg, in.hasMsg = im, true

		// Flow control: the emission consumes a credit on the producer's
		// link. Delivered messages return it after the consumer's
		// processing delay; dropped or misrouted ones leak it.
		if l := (Link{m.Src, m.Dst}); constrained(l) {
			credits[l]--
			if !ev.Dropped && !ev.Misrouted {
				releases = append(releases, release{link: l, at: ev.Cycle + cfg.CreditDelay})
			}
		}
		if portConstrained(m.Src) {
			ports[m.Src]--
			releases = append(releases, release{ip: m.Src, at: ev.Cycle + cfg.PortDelay})
		}

		switch {
		case ev.Dropped, ev.Misrouted:
			// The consumer never sees the message; the protocol stalls.
			in.wedged = true
		default:
			if ev.Corrupted {
				in.poisoned = true
			}
			in.state = edge.To
			lat := cfg.MinLatency
			if cfg.MaxLatency > cfg.MinLatency {
				lat += uint64(rng.Int63n(int64(cfg.MaxLatency - cfg.MinLatency + 1)))
			}
			in.readyAt = ev.Cycle + lat
			// An execution ends at the first stop state it reaches
			// (Definition 2).
			if f.IsStop(in.state) {
				in.done = true
				if in.poisoned {
					res.Symptoms = append(res.Symptoms, Symptom{
						Kind: BadTrap, Cycle: ev.Cycle, Flow: f.Name(), Index: in.launch.Index, Msg: im,
					})
				}
			}
		}
	}

	res.EndCycle = cycle
	for _, in := range run {
		switch {
		case in.done:
			res.Completed++
		default:
			if in.wedged {
				res.Wedged++
			}
			s := Symptom{Kind: Hang, Cycle: cycle, Flow: in.launch.Flow.Name(), Index: in.launch.Index}
			if in.hasMsg {
				s.Msg = in.lastMsg
			}
			res.Symptoms = append(res.Symptoms, s)
		}
	}
	sort.SliceStable(res.Symptoms, func(i, j int) bool { return res.Symptoms[i].Cycle < res.Symptoms[j].Cycle })
	if cfg.Obs != nil {
		recordRun(cfg.Obs, sc, res)
	}
	return res, nil
}

// recordRun aggregates a finished run into the registry — one pass over
// the event list at run end, never per-event work inside the simulation
// loop.
func recordRun(reg *obs.Registry, sc Scenario, res *Result) {
	var delivered, dropped, misrouted, corrupted int64
	for _, ev := range res.Events {
		switch {
		case ev.Dropped:
			dropped++
		case ev.Misrouted:
			misrouted++
		default:
			delivered++
		}
		if ev.Corrupted {
			corrupted++
		}
	}
	reg.Counter("soc.runs").Inc()
	reg.Add("soc.cycles", int64(res.EndCycle))
	reg.Add("soc.events.emitted", int64(len(res.Events)))
	reg.Add("soc.events.delivered", delivered)
	reg.Add("soc.events.dropped", dropped)
	reg.Add("soc.events.misrouted", misrouted)
	reg.Add("soc.events.corrupted", corrupted)
	reg.Add("soc.instances.launched", int64(len(sc.Launches)))
	reg.Add("soc.instances.completed", int64(res.Completed))
	reg.Add("soc.instances.wedged", int64(res.Wedged))
	reg.Add("soc.symptoms", int64(len(res.Symptoms)))
	reg.Histogram("soc.run_cycles", runCycleBounds).Observe(int64(res.EndCycle))
	reg.Trace().Emit("soc", "run", map[string]int64{
		"launches":  int64(len(sc.Launches)),
		"events":    int64(len(res.Events)),
		"cycles":    int64(res.EndCycle),
		"completed": int64(res.Completed),
		"wedged":    int64(res.Wedged),
		"symptoms":  int64(len(res.Symptoms)),
	})
}

// runCycleBounds buckets soc.run_cycles: regression tests end within
// thousands of cycles; hangs abort at MaxCycles (default 10M).
var runCycleBounds = []int64{1_000, 10_000, 100_000, 1_000_000, 10_000_000}

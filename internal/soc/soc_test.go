package soc

import (
	"math/rand"
	"strings"
	"testing"

	"tracescale/internal/flow"
	"tracescale/internal/tbuf"
)

type funcInjector func(ev Event, rng *rand.Rand) Outcome

func (f funcInjector) Apply(ev Event, rng *rand.Rand) Outcome { return f(ev, rng) }

func ccScenario(n int) Scenario {
	f := flow.CacheCoherence()
	return Scenario{Name: "cc", Launches: Repeat(f, n, 1, 0, 3)}
}

func TestRunCleanCompletes(t *testing.T) {
	res, err := Run(ccScenario(4), Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("symptoms = %v, want none", res.Symptoms)
	}
	if res.Completed != 4 || res.Wedged != 0 {
		t.Errorf("Completed/Wedged = %d/%d, want 4/0", res.Completed, res.Wedged)
	}
	if len(res.Events) != 12 {
		t.Errorf("events = %d, want 12 (3 per instance)", len(res.Events))
	}
	if res.EndCycle == 0 {
		t.Error("EndCycle = 0")
	}
	// Sequence numbers are dense and increasing.
	for i, ev := range res.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(ccScenario(6), Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ccScenario(6), Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

// While an instance occupies its atomic state (after GntE, before Ack) no
// other instance may emit: every GntE is immediately followed in the event
// order by the same instance's Ack.
func TestAtomicMutexSerializesGrant(t *testing.T) {
	res, err := Run(ccScenario(8), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range res.Events {
		if ev.Msg.Name != "GntE" {
			continue
		}
		if i+1 >= len(res.Events) {
			t.Fatalf("run ended inside atomic section of instance %d", ev.Msg.Index)
		}
		next := res.Events[i+1]
		if next.Msg.Name != "Ack" || next.Msg.Index != ev.Msg.Index {
			t.Fatalf("event after %v is %v, want %d:Ack", ev.Msg, next.Msg, ev.Msg.Index)
		}
	}
}

func TestOccurrenceNumbering(t *testing.T) {
	res, err := Run(ccScenario(3), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range res.Events {
		// Each indexed message fires exactly once per instance here.
		if ev.Occurrence != 0 {
			t.Errorf("%v occurrence = %d, want 0", ev.Msg, ev.Occurrence)
		}
	}
}

func TestDataGenPureFunction(t *testing.T) {
	m := flow.Message{Name: "x", Width: 20}
	a := DefaultDataGen(m, 1, 2, 99)
	b := DefaultDataGen(m, 1, 2, 99)
	if a != b {
		t.Error("DefaultDataGen not deterministic")
	}
	if a >= 1<<20 {
		t.Errorf("payload %d exceeds width mask", a)
	}
	if DefaultDataGen(m, 1, 3, 99) == a && DefaultDataGen(m, 2, 2, 99) == a {
		t.Error("payloads suspiciously identical across coordinates")
	}
}

func TestDropInjectorWedgesAndHangs(t *testing.T) {
	drop := funcInjector(func(ev Event, _ *rand.Rand) Outcome {
		if ev.Msg.Name == "GntE" && ev.Msg.Index == 2 {
			return Outcome{Drop: true, Bug: 11}
		}
		return Outcome{}
	})
	res, err := Run(ccScenario(3), Config{Seed: 5, Injectors: []Injector{drop}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("run should fail")
	}
	if res.Wedged != 1 || res.Completed != 2 {
		t.Errorf("Wedged/Completed = %d/%d, want 1/2", res.Wedged, res.Completed)
	}
	var hang *Symptom
	for i := range res.Symptoms {
		if res.Symptoms[i].Kind == Hang {
			hang = &res.Symptoms[i]
		}
	}
	if hang == nil {
		t.Fatalf("no hang symptom in %v", res.Symptoms)
	}
	if hang.Index != 2 || hang.Msg.Name != "GntE" {
		t.Errorf("hang = %+v, want instance 2 at GntE", hang)
	}
	if !strings.Contains(hang.String(), "hang") {
		t.Errorf("String = %q", hang.String())
	}
	// The dropped event exists but is not delivered.
	found := false
	for _, ev := range res.Events {
		if ev.Dropped {
			found = true
			if ev.Bug != 11 {
				t.Errorf("dropped event bug id = %d, want 11", ev.Bug)
			}
		}
	}
	if !found {
		t.Error("no dropped event recorded")
	}
	if len(res.Delivered()) != len(res.Events)-1 {
		t.Errorf("Delivered = %d, want %d", len(res.Delivered()), len(res.Events)-1)
	}
}

func TestCorruptInjectorCausesBadTrap(t *testing.T) {
	corrupt := funcInjector(func(ev Event, _ *rand.Rand) Outcome {
		if ev.Msg.Name == "ReqE" && ev.Msg.Index == 1 {
			return Outcome{XorMask: 1, Bug: 4}
		}
		return Outcome{}
	})
	res, err := Run(ccScenario(2), Config{Seed: 5, Injectors: []Injector{corrupt}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Errorf("Completed = %d, want 2 (corruption does not stall)", res.Completed)
	}
	if len(res.Symptoms) != 1 || res.Symptoms[0].Kind != BadTrap || res.Symptoms[0].Index != 1 {
		t.Fatalf("symptoms = %v, want one bad-trap on instance 1", res.Symptoms)
	}
	if !strings.Contains(res.Symptoms[0].String(), "bad-trap") {
		t.Errorf("String = %q", res.Symptoms[0].String())
	}
}

func TestMisrouteInjector(t *testing.T) {
	misroute := funcInjector(func(ev Event, _ *rand.Rand) Outcome {
		if ev.Msg.Name == "Ack" && ev.Msg.Index == 1 {
			return Outcome{Misroute: "WrongIP", Bug: 9}
		}
		return Outcome{}
	})
	res, err := Run(ccScenario(2), Config{Seed: 5, Injectors: []Injector{misroute}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("misroute should cause a failure")
	}
	var ev *Event
	for i := range res.Events {
		if res.Events[i].Misrouted {
			ev = &res.Events[i]
		}
	}
	if ev == nil || ev.Dst != "WrongIP" {
		t.Fatalf("misrouted event = %+v", ev)
	}
}

func TestDelayInjector(t *testing.T) {
	delay := funcInjector(func(ev Event, _ *rand.Rand) Outcome {
		if ev.Msg.Name == "ReqE" {
			return Outcome{Delay: 100}
		}
		return Outcome{}
	})
	res, err := Run(ccScenario(1), Config{Seed: 5, Injectors: []Injector{delay}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("delay alone should not fail: %v", res.Symptoms)
	}
	if res.Events[0].Cycle < 100 {
		t.Errorf("delayed event at cycle %d, want >= 100", res.Events[0].Cycle)
	}
}

func TestGoldenVsBuggyPayloadsAgreeWhenUnaffected(t *testing.T) {
	corrupt := funcInjector(func(ev Event, _ *rand.Rand) Outcome {
		if ev.Msg.Name == "GntE" {
			return Outcome{XorMask: 1}
		}
		return Outcome{}
	})
	golden, err := Run(ccScenario(4), Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	buggy, err := Run(ccScenario(4), Config{Seed: 9, Injectors: []Injector{corrupt}})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		m   flow.IndexedMsg
		occ int
	}
	gold := make(map[key]uint64)
	for _, ev := range golden.Events {
		gold[key{ev.Msg, ev.Occurrence}] = ev.Data
	}
	for _, ev := range buggy.Events {
		want, ok := gold[key{ev.Msg, ev.Occurrence}]
		if !ok {
			t.Fatalf("buggy event %v missing from golden", ev.Msg)
		}
		switch ev.Msg.Name {
		case "GntE":
			if ev.Data == want {
				t.Errorf("%v not corrupted", ev.Msg)
			}
		case "Ack":
			// Downstream of the corruption within the same instance:
			// poisoned state propagates.
			if ev.Data == want {
				t.Errorf("%v not poisoned though downstream of corruption", ev.Msg)
			}
			if !ev.Corrupted {
				t.Errorf("%v not flagged corrupted", ev.Msg)
			}
		default: // ReqE precedes the corruption
			if ev.Data != want {
				t.Errorf("%v payload differs though unaffected", ev.Msg)
			}
		}
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	f := flow.CacheCoherence()
	sc := Scenario{Name: "late", Launches: []Launch{{Flow: f, Index: 1, Start: 1000}}}
	res, err := Run(sc, Config{Seed: 1, MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() || res.Completed != 0 {
		t.Errorf("aborted run should hang: %+v", res)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Scenario{}, Config{}); err == nil {
		t.Error("empty scenario should fail")
	}
	f := flow.CacheCoherence()
	sc := Scenario{Launches: []Launch{{Flow: f, Index: 1}, {Flow: f, Index: 1}}}
	if _, err := Run(sc, Config{}); err == nil {
		t.Error("illegal indexing should fail")
	}
}

func TestRepeat(t *testing.T) {
	f := flow.CacheCoherence()
	ls := Repeat(f, 3, 5, 10, 7)
	if len(ls) != 3 {
		t.Fatalf("len = %d", len(ls))
	}
	if ls[2].Index != 7 || ls[2].Start != 24 {
		t.Errorf("ls[2] = %+v", ls[2])
	}
}

func TestMonitorCapturesPlannedMessagesOnly(t *testing.T) {
	res, err := Run(ccScenario(3), Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tbuf.NewCapturePlan([]tbuf.Rule{
		{Message: "ReqE", Width: 1, Bits: 1},
		{Message: "GntE", Width: 1, Bits: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	mon := NewMonitor(plan, tbuf.New(2, 64), &sb)
	if err := mon.Consume(res.Events); err != nil {
		t.Fatal(err)
	}
	if mon.Captured() != 6 {
		t.Errorf("Captured = %d, want 6 (ReqE+GntE per instance)", mon.Captured())
	}
	for _, e := range mon.Buffer().Entries() {
		if e.Msg.Name == "Ack" {
			t.Errorf("Ack captured though unplanned")
		}
	}
	if !strings.Contains(sb.String(), "ReqE") {
		t.Error("trace file missing ReqE lines")
	}
}

func TestMonitorIgnoresDroppedEvents(t *testing.T) {
	plan, err := tbuf.NewCapturePlan([]tbuf.Rule{{Message: "ReqE", Width: 1, Bits: 1}})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(plan, tbuf.New(1, 8), nil)
	if err := mon.Observe(Event{Msg: flow.IndexedMsg{Name: "ReqE", Index: 1}, Dropped: true}); err != nil {
		t.Fatal(err)
	}
	if mon.Captured() != 0 {
		t.Error("dropped event captured")
	}
}

func TestSymptomKindString(t *testing.T) {
	if Hang.String() != "hang" || BadTrap.String() != "bad-trap" {
		t.Error("SymptomKind strings wrong")
	}
	if !strings.Contains(SymptomKind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}

// An instance wedged inside an atomic state holds the global mutex
// forever: the run must detect the deadlock and hang everyone rather than
// spin.
func TestWedgeInsideAtomicStateDeadlocksRun(t *testing.T) {
	dropAck := funcInjector(func(ev Event, _ *rand.Rand) Outcome {
		if ev.Msg.Name == "Ack" && ev.Msg.Index == 1 {
			return Outcome{Drop: true, Bug: 1}
		}
		return Outcome{}
	})
	res, err := Run(ccScenario(3), Config{Seed: 4, Injectors: []Injector{dropAck}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("deadlocked run passed")
	}
	// Instance 1 wedges in GntW (atomic): nobody else can ever move, so
	// any instance that hadn't finished hangs too.
	if res.Completed == 3 {
		t.Error("all instances completed despite a held atomic state")
	}
	hangs := 0
	for _, s := range res.Symptoms {
		if s.Kind == Hang {
			hangs++
		}
	}
	if hangs != 3-res.Completed {
		t.Errorf("hangs = %d, want %d", hangs, 3-res.Completed)
	}
	// The run must terminate promptly (deadlock detection), not at
	// MaxCycles.
	if res.EndCycle >= 10_000_000 {
		t.Errorf("run spun to MaxCycles (%d)", res.EndCycle)
	}
}

func TestCreditsSerializeLink(t *testing.T) {
	// One credit on the 1->Dir link (carrying ReqE and Ack): at most one
	// such message may be in flight; the next must wait CreditDelay cycles
	// past the previous delivery.
	link := Link{Src: "1", Dst: "Dir"}
	const delay = 6
	res, err := Run(ccScenario(4), Config{Seed: 2, Credits: map[Link]int{link: 1}, CreditDelay: delay})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("credited run failed: %v", res.Symptoms)
	}
	var last uint64
	first := true
	for _, ev := range res.Events {
		if ev.Src != "1" || ev.Dst != "Dir" {
			continue
		}
		if !first && ev.Cycle < last+delay {
			t.Fatalf("link emission at %d violates credit spacing (prev %d, delay %d)", ev.Cycle, last, delay)
		}
		last = ev.Cycle
		first = false
	}
	if first {
		t.Fatal("no events on the credited link")
	}
}

func TestZeroCreditsDeadlockEverything(t *testing.T) {
	link := Link{Src: "1", Dst: "Dir"}
	res, err := Run(ccScenario(3), Config{Seed: 2, Credits: map[Link]int{link: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() || res.Completed != 0 {
		t.Fatalf("zero-credit run should hang everyone: %+v", res)
	}
	if len(res.Events) != 0 {
		t.Errorf("events = %d, want 0 (first message needs the credit)", len(res.Events))
	}
}

// A drop bug leaks the consumed credit: with a one-credit link, a single
// dropped message starves every later instance of the link even though
// only one instance wedged directly.
func TestDroppedMessageLeaksCredit(t *testing.T) {
	link := Link{Src: "Dir", Dst: "1"} // GntE's link
	drop := funcInjector(func(ev Event, _ *rand.Rand) Outcome {
		if ev.Msg.Name == "GntE" && ev.Msg.Index == 1 {
			return Outcome{Drop: true, Bug: 3}
		}
		return Outcome{}
	})
	res, err := Run(ccScenario(3), Config{
		Seed: 2, Credits: map[Link]int{link: 1}, Injectors: []Injector{drop},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Errorf("Completed = %d, want 0: the leaked GntE credit starves every grant", res.Completed)
	}
	if len(res.Symptoms) != 3 {
		t.Errorf("symptoms = %d, want 3 hangs", len(res.Symptoms))
	}
}

func TestCreditsUnconstrainedLinksUnaffected(t *testing.T) {
	// Constraining an unused link changes nothing.
	plain, err := Run(ccScenario(4), Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := Run(ccScenario(4), Config{
		Seed: 11, Credits: map[Link]int{{Src: "X", Dst: "Y"}: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Events) != len(constrained.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(plain.Events), len(constrained.Events))
	}
	for i := range plain.Events {
		if plain.Events[i] != constrained.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestWriteTimeline(t *testing.T) {
	drop := funcInjector(func(ev Event, _ *rand.Rand) Outcome {
		if ev.Msg.Name == "GntE" && ev.Msg.Index == 2 {
			return Outcome{Drop: true}
		}
		return Outcome{}
	})
	res, err := Run(ccScenario(3), Config{Seed: 5, Injectors: []Injector{drop}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTimeline(&sb, res, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"timeline:", "1->Dir", "Dir->1", "x", "symptoms: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Truncation cap.
	sb.Reset()
	if err := WriteTimeline(&sb, res, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "3 of") {
		t.Errorf("timeline cap not applied:\n%s", sb.String())
	}
	// Clean run renders "symptoms: none".
	clean, err := Run(ccScenario(2), Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteTimeline(&sb, clean, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "symptoms: none") {
		t.Errorf("clean timeline:\n%s", sb.String())
	}
}

func TestPortsSerializeSourceIP(t *testing.T) {
	// A single port on IP "1" (emitting ReqE and Ack): consecutive
	// emissions from "1" must be at least PortDelay apart.
	const delay = 5
	res, err := Run(ccScenario(4), Config{
		Seed:      3,
		Ports:     map[string]int{"1": 1},
		PortDelay: delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("ported run failed: %v", res.Symptoms)
	}
	var last uint64
	first := true
	for _, ev := range res.Events {
		if ev.Src != "1" {
			continue
		}
		if !first && ev.Cycle < last+delay {
			t.Fatalf("emission from IP 1 at %d violates port spacing (prev %d)", ev.Cycle, last)
		}
		last = ev.Cycle
		first = false
	}
	if first {
		t.Fatal("no emissions from IP 1")
	}
}

func TestPortsReleaseEvenOnDrop(t *testing.T) {
	// Unlike credits, a dropped message does not leak the producer's port:
	// the other instances still progress.
	drop := funcInjector(func(ev Event, _ *rand.Rand) Outcome {
		if ev.Msg.Name == "ReqE" && ev.Msg.Index == 1 {
			return Outcome{Drop: true}
		}
		return Outcome{}
	})
	res, err := Run(ccScenario(3), Config{
		Seed:      3,
		Ports:     map[string]int{"1": 1},
		Injectors: []Injector{drop},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 2 {
		t.Errorf("Completed = %d, want 2 (only the dropped instance wedges)", res.Completed)
	}
}

func TestMonitorTrigger(t *testing.T) {
	res, err := Run(ccScenario(3), Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tbuf.NewCapturePlan([]tbuf.Rule{
		{Message: "ReqE", Width: 1, Bits: 1},
		{Message: "GntE", Width: 1, Bits: 1},
		{Message: "Ack", Width: 1, Bits: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Unqualified: everything captured.
	all := NewMonitor(plan, tbuf.New(3, 64), nil)
	if err := all.Consume(res.Events); err != nil {
		t.Fatal(err)
	}
	if all.Captured() != 9 {
		t.Fatalf("unqualified captured %d, want 9", all.Captured())
	}

	// Armed by the first GntE, disarmed at the first Ack: a short window.
	win := NewMonitor(plan, tbuf.New(3, 64), nil)
	win.SetTrigger(Trigger{Start: "GntE", Stop: "Ack"})
	if err := win.Consume(res.Events); err != nil {
		t.Fatal(err)
	}
	entries := win.Buffer().Entries()
	if len(entries) < 2 {
		t.Fatalf("windowed capture = %d entries", len(entries))
	}
	if entries[0].Msg.Name != "GntE" {
		t.Errorf("window starts with %s, want GntE", entries[0].Msg.Name)
	}
	if last := entries[len(entries)-1]; last.Msg.Name != "Ack" {
		t.Errorf("window ends with %s, want Ack", last.Msg.Name)
	}
	if win.Captured() >= all.Captured() {
		t.Errorf("windowed capture %d not smaller than unqualified %d", win.Captured(), all.Captured())
	}

	// Rearming captures every GntE..Ack window: with the atomic grant
	// section, that is exactly GntE and Ack per instance (6 entries).
	re := NewMonitor(plan, tbuf.New(3, 64), nil)
	re.SetTrigger(Trigger{Start: "GntE", Stop: "Ack", Rearm: true})
	if err := re.Consume(res.Events); err != nil {
		t.Fatal(err)
	}
	if re.Captured() != 6 {
		t.Errorf("rearming capture = %d, want 6 (GntE+Ack per instance)", re.Captured())
	}
	for _, e := range re.Buffer().Entries() {
		if e.Msg.Name == "ReqE" {
			t.Error("ReqE captured outside any window")
		}
	}
}

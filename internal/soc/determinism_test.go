package soc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tracescale/internal/flow"
)

// TestRunDeterministicForSeed is the invariant the campaign runner's
// seed-derivation scheme stands on: an identical Config.Seed and scenario
// must reproduce the Result byte-for-byte — events, symptoms, and timeline
// — across reruns. The workload deliberately exercises every RNG consumer:
// ready-instance and edge picks, latency jitter, and a probabilistic
// injector.
func TestRunDeterministicForSeed(t *testing.T) {
	f := flow.CacheCoherence()
	sc := Scenario{Name: "det", Launches: Repeat(f, 8, 1, 0, 5)}
	cfg := Config{
		Seed:       1234,
		MinLatency: 1,
		MaxLatency: 7,
		Injectors: []Injector{funcInjector(func(ev Event, rng *rand.Rand) Outcome {
			// A probabilistic corruption: fires on the rng stream, so a
			// rerun only matches if the whole stream replays identically.
			if rng.Float64() < 0.25 {
				return Outcome{Bug: 9, XorMask: 0x5}
			}
			return Outcome{}
		})},
	}
	want, err := Run(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Events) == 0 {
		t.Fatal("workload produced no events")
	}
	wantRepr := fmt.Sprintf("%#v %#v %d %d %d", want.Events, want.Symptoms,
		want.EndCycle, want.Completed, want.Wedged)
	for rerun := 0; rerun < 20; rerun++ {
		got, err := Run(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rerun %d diverged structurally", rerun)
		}
		gotRepr := fmt.Sprintf("%#v %#v %d %d %d", got.Events, got.Symptoms,
			got.EndCycle, got.Completed, got.Wedged)
		if gotRepr != wantRepr {
			t.Fatalf("rerun %d diverged byte-wise:\n got %s\nwant %s", rerun, gotRepr, wantRepr)
		}
	}
	// Distinct seeds must actually change the run — otherwise the test
	// above proves nothing about the RNG plumbing.
	other, err := Run(sc, Config{Seed: 4321, MinLatency: cfg.MinLatency,
		MaxLatency: cfg.MaxLatency, Injectors: cfg.Injectors})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(other, want) {
		t.Error("seed 4321 reproduced seed 1234's run exactly — the seed is not reaching the RNG")
	}
}

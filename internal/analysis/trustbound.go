package analysis

// TrustBound pins the decode discipline of the serving layer's trust
// boundaries: every json.NewDecoder reachable (through the merged call
// graph) from an HTTP handler in internal/serve must
//
//   - call DisallowUnknownFields on the decoder before decoding — unknown
//     fields in a request or a worker reply are a protocol drift or an
//     attack, never something to silently drop; and
//   - sit in a function that validates what it decoded: the decoding
//     function itself, or every one of its direct callers, must make a
//     validation-shaped call (a function or method whose name contains
//     "valid") before the value escapes further.
//
// The rule generalizes what decodeShardResponse already does by hand, so
// the next endpoint cannot skip it. Decoders outside any handler's reach
// (CLI config loading, test helpers) are not this analyzer's concern.
var TrustBound = &Analyzer{
	Name:      "trustbound",
	Doc:       "handler-reachable json decoders in internal/serve must DisallowUnknownFields and be validation-checked",
	Scope:     []string{"serve"},
	GlobalRun: runTrustBound,
}

func runTrustBound(gp *GlobalPass) {
	u := gp.Unit
	// Roots: HTTP-handler-shaped functions in scope packages.
	var roots []string
	rootOf := make(map[string]string) // reached func -> first root's short name
	for _, id := range u.FuncIDs() {
		ff := u.Funcs[id]
		if ff.HTTPHandler && gp.InScope(ff.PkgPath) {
			roots = append(roots, id)
		}
	}
	for _, root := range roots {
		for reached := range u.ReachableFrom([]string{root}) {
			if _, ok := rootOf[reached]; !ok || u.Funcs[root].Short < rootOf[reached] {
				rootOf[reached] = u.Funcs[root].Short
			}
		}
	}
	// Direct callers, for the caller-side validation rule.
	callers := make(map[string][]string)
	for _, id := range u.FuncIDs() {
		for _, callee := range u.Callees(id) {
			callers[callee] = append(callers[callee], id)
		}
	}
	for _, id := range u.FuncIDs() {
		ff := u.Funcs[id]
		handler, reachable := rootOf[id]
		if !reachable || len(ff.Decoders) == 0 {
			continue
		}
		for _, dec := range ff.Decoders {
			if !dec.Disallow {
				gp.Report(dec.Pos,
					"json.NewDecoder reachable from HTTP handler %s never calls DisallowUnknownFields; strict-decode at the trust boundary",
					handler)
			}
		}
		if !validatedSomewhere(u, callers, id) {
			gp.Report(ff.Pos,
				"%s decodes handler-reachable input but neither it nor every direct caller makes a validation call; validate before the value escapes the trust boundary",
				ff.Short)
		}
	}
}

// validatedSomewhere reports whether the decoding function validates, or
// every direct caller of it does (the decode-here-validate-there split
// decodeInto and its handlers use).
func validatedSomewhere(u *Unit, callers map[string][]string, id string) bool {
	if u.Funcs[id].Validates {
		return true
	}
	callerIDs := callers[id]
	if len(callerIDs) == 0 {
		return false
	}
	for _, c := range callerIDs {
		cf, ok := u.Funcs[c]
		if !ok || !cf.Validates {
			return false
		}
	}
	return true
}

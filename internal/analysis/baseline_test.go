package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diagAt(file string, line int, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

// TestBaselineMatrix is the ratchet truth table: a baselined finding
// passes, a finding absent from the baseline fails, a baseline entry that
// no longer fires fails, and counts arbitrate when the same key occurs
// more than once.
func TestBaselineMatrix(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	entry := func(file, analyzer, msg string, n int) BaselineEntry {
		return BaselineEntry{File: file, Analyzer: analyzer, Message: msg, Count: n}
	}
	d := diagAt(filepath.Join(root, "a", "f.go"), 10, "ctxflow", "detached")
	cases := []struct {
		name      string
		base      []BaselineEntry
		diags     []Diagnostic
		wantFresh int
		wantStale int
	}{
		{name: "clean tree, empty baseline", base: nil, diags: nil},
		{name: "baselined finding passes",
			base:  []BaselineEntry{entry("a/f.go", "ctxflow", "detached", 1)},
			diags: []Diagnostic{d}},
		{name: "new finding fails",
			base:      nil,
			diags:     []Diagnostic{d},
			wantFresh: 1},
		{name: "stale entry fails",
			base:      []BaselineEntry{entry("a/f.go", "ctxflow", "detached", 1)},
			diags:     nil,
			wantStale: 1},
		{name: "count exceeded: the excess is fresh",
			base:      []BaselineEntry{entry("a/f.go", "ctxflow", "detached", 1)},
			diags:     []Diagnostic{d, diagAt(filepath.Join(root, "a", "f.go"), 40, "ctxflow", "detached")},
			wantFresh: 1},
		{name: "count undershot: the remainder is stale",
			base:      []BaselineEntry{entry("a/f.go", "ctxflow", "detached", 2)},
			diags:     []Diagnostic{d},
			wantStale: 1},
		{name: "message mismatch is both fresh and stale",
			base:      []BaselineEntry{entry("a/f.go", "ctxflow", "other message", 1)},
			diags:     []Diagnostic{d},
			wantFresh: 1,
			wantStale: 1},
		{name: "analyzer mismatch is both fresh and stale",
			base:      []BaselineEntry{entry("a/f.go", "detflow", "detached", 1)},
			diags:     []Diagnostic{d},
			wantFresh: 1,
			wantStale: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh, stale := DiffBaseline(&Baseline{Entries: tc.base}, tc.diags, root)
			if len(fresh) != tc.wantFresh || len(stale) != tc.wantStale {
				t.Errorf("fresh=%d stale=%d, want %d/%d (fresh %v, stale %v)",
					len(fresh), len(stale), tc.wantFresh, tc.wantStale, fresh, stale)
			}
		})
	}
}

// TestBaselineRoundTrip writes a baseline from diagnostics and reads it
// back: paths come out module-relative with forward slashes, entries are
// sorted and counted, and the round-tripped baseline accepts exactly the
// diagnostics that produced it.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	diags := []Diagnostic{
		diagAt(filepath.Join(root, "b", "g.go"), 3, "obsname", "bad name"),
		diagAt(filepath.Join(root, "a", "f.go"), 10, "ctxflow", "detached"),
		diagAt(filepath.Join(root, "a", "f.go"), 20, "ctxflow", "detached"),
	}
	b := NewBaseline(diags, root)
	if len(b.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (counted key + distinct key): %v", len(b.Entries), b.Entries)
	}
	if e := b.Entries[0]; e.File != "a/f.go" || e.Analyzer != "ctxflow" || e.Count != 2 {
		t.Errorf("first entry = %+v, want a/f.go ctxflow x2", e)
	}
	if e := b.Entries[1]; e.File != "b/g.go" || e.Count != 1 {
		t.Errorf("second entry = %+v, want b/g.go x1", e)
	}

	path := filepath.Join(root, "baseline.json")
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := DiffBaseline(loaded, diags, root)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("round-tripped baseline rejects its own diagnostics: fresh %v stale %v", fresh, stale)
	}
}

// TestBaselineWriteEmpty pins the committed-empty-baseline form: an
// explicit entries array, never null.
func TestBaselineWriteEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := (&Baseline{}).Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"entries": []`) {
		t.Errorf("empty baseline = %q, want an explicit empty entries array", data)
	}
	if _, err := LoadBaseline(path); err != nil {
		t.Errorf("empty baseline does not load: %v", err)
	}
}

// TestBaselineLoadErrors pins the loud-failure contract: missing files and
// malformed entries are errors, not silently empty baselines.
func TestBaselineLoadErrors(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline file must be an error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	writeFile(t, bad, `{"entries": [{"file": "a.go", "analyzer": "", "message": "m", "count": 1}]}`)
	if _, err := LoadBaseline(bad); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("err = %v, want a malformed-entry error", err)
	}
	zero := filepath.Join(dir, "zero.json")
	writeFile(t, zero, `{"entries": [{"file": "a.go", "analyzer": "x", "message": "m", "count": 0}]}`)
	if _, err := LoadBaseline(zero); err == nil {
		t.Error("a zero-count entry must be rejected")
	}
}

// TestRelSlash pins the path normalization baseline keys use.
func TestRelSlash(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	cases := map[string]string{
		filepath.Join(root, "a", "f.go"):                                "a/f.go",
		filepath.Join("other", "f.go"):                                  "other/f.go",      // relative stays as given
		string(filepath.Separator) + filepath.Join("elsewhere", "f.go"): "/elsewhere/f.go", // outside root: as given
	}
	for file, want := range cases {
		if got := relSlash(root, file); got != want {
			t.Errorf("relSlash(%q, %q) = %q, want %q", root, file, got, want)
		}
	}
}

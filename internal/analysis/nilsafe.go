package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilSafe enforces the obs package's documented contract: every method on a
// nil *Registry, *Counter, *Gauge, *Histogram, or *Trace must be a no-op.
// Mechanically: an exported pointer-receiver method that reads or writes a
// field of its receiver must make `if recv == nil { return ... }` its first
// statement. Methods that never touch a receiver field — pure delegations
// like Counter.Inc (c.Add(1)) or Registry.WriteJSON (r.Snapshot()) — are
// nil-safe by induction through the methods they call and need no guard.
var NilSafe = &Analyzer{
	Name:     "nilsafe",
	Doc:      "exported pointer-receiver methods in internal/obs (and the nil-contract types elsewhere) must nil-guard before touching receiver fields",
	Scope:    []string{"obs", "pipeline", "serve"},
	FactsRun: runNilSafe,
}

// nilContractTypes are the types outside internal/obs that carry the same
// documented nil-is-a-no-op contract: a nil *ResultStore stores nothing and
// misses every Get; a nil *HTTPRunner degrades to the local runner. Inside
// obs the contract covers every exported pointer-receiver method, so no
// allowlist applies there.
var nilContractTypes = map[string]bool{
	"ResultStore": true,
	"HTTPRunner":  true,
}

// runNilSafe reports the unguarded-method sites the collector recorded,
// restricted outside obs to the explicit nil-contract types.
func runNilSafe(pass *Pass, pf *PkgFacts) {
	obsPkg := pathHasSegment(pf.Path, "obs")
	for _, ff := range pf.Funcs {
		for _, site := range ff.NilGuards {
			if !obsPkg && !nilContractTypes[site.TypeName] {
				continue
			}
			pass.ReportPosf(site.Pos,
				"exported method (*%s).%s touches receiver fields without a leading nil-receiver guard (obs nil-safe contract)",
				site.TypeName, site.Method)
		}
	}
}

// pointerReceiver returns the receiver's *types.Var and the receiver base
// type name when fd has a named pointer receiver; typeName is "" for value
// receivers.
func pointerReceiver(pass *Pass, fd *ast.FuncDecl) (*types.Var, string) {
	if len(fd.Recv.List) != 1 {
		return nil, ""
	}
	field := fd.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return nil, ""
	}
	base := star.X
	if idx, ok := base.(*ast.IndexExpr); ok { // generic receiver *T[P]
		base = idx.X
	}
	ident, ok := base.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return nil, ident.Name
	}
	obj, _ := pass.Info.Defs[field.Names[0]].(*types.Var)
	if obj == nil {
		return nil, ""
	}
	return obj, ident.Name
}

// receiverFieldAccess reports whether the body selects a field of the
// receiver (recv.f), the one operation that panics on a nil receiver.
// Method calls rooted at the receiver (recv.M(...), recv.M().N(...)) are
// fine: each callee is itself held to the contract.
func receiverFieldAccess(pass *Pass, body *ast.BlockStmt, recv *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || found {
			return !found
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || pass.Info.Uses[ident] != recv {
			return true
		}
		if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			found = true
		}
		return true
	})
	return found
}

// beginsWithNilGuard reports whether the body's first statement is
// `if recv == nil { ... return ... }` (possibly `recv == nil || more`),
// with the guard body ending in a return.
func beginsWithNilGuard(pass *Pass, body *ast.BlockStmt, recv *types.Var) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	if !condChecksNil(pass, ifStmt.Cond, recv) {
		return false
	}
	n := len(ifStmt.Body.List)
	if n == 0 {
		return false
	}
	_, ok = ifStmt.Body.List[n-1].(*ast.ReturnStmt)
	return ok
}

// condChecksNil reports whether cond is `recv == nil` or an || chain with
// `recv == nil` as an operand.
func condChecksNil(pass *Pass, cond ast.Expr, recv *types.Var) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNil(pass, e.X, recv)
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condChecksNil(pass, e.X, recv) || condChecksNil(pass, e.Y, recv)
		}
		if e.Op != token.EQL {
			return false
		}
		return isRecvNilPair(pass, e.X, e.Y, recv) || isRecvNilPair(pass, e.Y, e.X, recv)
	}
	return false
}

func isRecvNilPair(pass *Pass, a, b ast.Expr, recv *types.Var) bool {
	ident, ok := a.(*ast.Ident)
	if !ok || pass.Info.Uses[ident] != recv {
		return false
	}
	nilIdent, ok := b.(*ast.Ident)
	return ok && nilIdent.Name == "nil"
}

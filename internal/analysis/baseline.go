package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The lint ratchet: a committed baseline of known findings that may only
// shrink, the same one-way gate the coverage and bench ratchets enforce.
// `tracelint -baseline lint_baseline.json` fails on any finding absent from
// the baseline (no new debt) AND on any baseline entry that no longer
// fires (pay-down must be banked by shrinking the file, or the entry would
// silently mask a future regression at the same site).
//
// Entries are keyed (module-relative slash path, analyzer, message) with an
// occurrence count, not line numbers — unrelated edits move lines, and a
// ratchet that churns on every edit trains people to regenerate it blindly.

// BaselineEntry is one known finding class: count occurrences of an
// (analyzer, message) pair in a file.
type BaselineEntry struct {
	File     string `json:"file"` // module-relative, slash-separated
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the committed set of known findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

type baselineKey struct {
	file     string
	analyzer string
	message  string
}

// LoadBaseline reads a baseline file. A missing file is an error — the
// ratchet gates CI, so a silently absent baseline must fail loudly, and an
// empty repo state is an explicit `{"entries": []}`.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		if e.File == "" || e.Analyzer == "" || e.Message == "" || e.Count < 1 {
			return nil, fmt.Errorf("analysis: baseline %s entry %d is malformed (need file, analyzer, message, count ≥ 1)", path, i)
		}
	}
	return &b, nil
}

// NewBaseline builds a baseline from current findings, with files
// root-relative. Entries are sorted (file, analyzer, message) so the JSON
// is diff-stable.
func NewBaseline(diags []Diagnostic, root string) *Baseline {
	counts := make(map[baselineKey]int)
	for _, d := range diags {
		counts[diagKey(d, root)]++
	}
	b := &Baseline{Entries: make([]BaselineEntry, 0, len(counts))}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{File: k.file, Analyzer: k.analyzer, Message: k.message, Count: n})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// Write renders the baseline as indented JSON (always with an entries
// array, never null) to path.
func (b *Baseline) Write(path string) error {
	if b.Entries == nil {
		b.Entries = []BaselineEntry{}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// diagKey normalizes a diagnostic to its baseline key: the file path made
// root-relative and slash-separated.
func diagKey(d Diagnostic, root string) baselineKey {
	return baselineKey{file: relSlash(root, d.Pos.Filename), analyzer: d.Analyzer, message: d.Message}
}

// relSlash renders file relative to root with forward slashes, falling
// back to the path as given when it is not under root.
func relSlash(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// DiffBaseline splits current findings against the baseline: fresh is
// every finding beyond its entry's count (in sorted diagnostic order —
// the first Count occurrences of a key are the baselined ones), and stale
// is every entry (or remainder of one) that no longer fires. The gate
// passes only when both are empty.
func DiffBaseline(b *Baseline, diags []Diagnostic, root string) (fresh []Diagnostic, stale []BaselineEntry) {
	budget := make(map[baselineKey]int)
	for _, e := range b.Entries {
		budget[baselineKey{file: e.File, analyzer: e.Analyzer, message: e.Message}] += e.Count
	}
	for _, d := range diags {
		k := diagKey(d, root)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		k := baselineKey{file: e.File, analyzer: e.Analyzer, message: e.Message}
		if left := budget[k]; left > 0 {
			stale = append(stale, BaselineEntry{File: e.File, Analyzer: e.Analyzer, Message: e.Message, Count: left})
			budget[k] = 0
		}
	}
	return fresh, stale
}

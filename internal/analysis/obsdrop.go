package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsDrop guards registry threading: the obs contract has library code pass
// a possibly-nil *obs.Registry through unconditionally, so a function that
// was handed a registry and then calls a registry-accepting callee with a
// literal nil silently blackholes every metric on that call path — the
// whole layer below disappears from snapshots with no error anywhere.
// Deliberately-unobserved wrappers (interleave.New, pipeline.NewSession)
// are fine: they take no registry, so there is nothing to drop.
var ObsDrop = &Analyzer{
	Name:     "obsdrop",
	Doc:      "functions receiving a *obs.Registry must thread it, not pass nil, to registry-accepting callees",
	FactsRun: runObsDrop,
}

// runObsDrop reports the nil-registry-pass sites the collector recorded.
func runObsDrop(pass *Pass, pf *PkgFacts) {
	for _, ff := range pf.Funcs {
		for _, site := range ff.NilRegs {
			pass.ReportPosf(site.Pos,
				"%s receives a *obs.Registry but passes nil to %s; thread the registry (a nil here blackholes downstream metrics)",
				site.Func, site.Callee)
		}
	}
}

func hasRegistryParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isRegistryPtr(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// isRegistryPtr reports whether t is *Registry of an obs package (matched
// by import-path tail, so the rule follows the type wherever the module
// lives).
func isRegistryPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

// calleeSignature resolves the called function's signature; conversions and
// builtins have none and are skipped.
func calleeSignature(pass *Pass, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// paramTypeAt returns the type of the parameter receiving argument i,
// accounting for variadics.
func paramTypeAt(sig *types.Signature, i int) (types.Type, bool) {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil, false
	}
	if i < n-1 || (!sig.Variadic() && i < n) {
		return params.At(i).Type(), true
	}
	if !sig.Variadic() {
		return nil, false // more args than params: conversion-ish, skip
	}
	last := params.At(n - 1).Type()
	if sl, ok := last.(*types.Slice); ok {
		return sl.Elem(), true
	}
	return last, true
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	ident, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[ident].(*types.Nil)
	return isNil
}

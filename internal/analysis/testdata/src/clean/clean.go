// Package clean is golden input with zero findings: every pattern here is a
// near-miss that the analyzers must NOT flag. The harness checks it under an
// import path that puts all four analyzers in scope.
package clean

import (
	"math/rand"
	"sort"

	"tracescale/internal/obs"
)

// Meter is nil-safe the way the obs contract demands.
type Meter struct{ v int64 }

// Bump guards before touching fields.
func (m *Meter) Bump() {
	if m == nil {
		return
	}
	m.v++
}

// Keys is the collect-then-sort idiom detrange absolves.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count accumulates an integer: order-independent, allowed in map order.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Jitter draws from an injected, seeded generator.
func Jitter(r *rand.Rand) int {
	return r.Intn(16)
}

// Observe threads its registry through unchanged.
func Observe(reg *obs.Registry, n int64) {
	record(reg, n)
}

func record(reg *obs.Registry, n int64) {
	reg.Add("clean.n", n)
}

// Package ctxflow is the golden input of the context-threading analyzer:
// a function that takes a context must hand that context (not a literal
// Background/TODO) to ctx-accepting callees, and its big loops must stay
// cancellable. Checked under import path "x/flow" — in ctxflow's scope but
// outside detflow's — with no clock, rand, or map-order constructs, so
// only the context discipline fires.
package ctxflow

import "context"

// work is the ctx-accepting callee the findings point at.
func work(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n * 2
}

// Detach hands the callee a literal Background while its own context is in
// scope: the callee silently escapes the caller's cancellation.
func Detach(ctx context.Context, n int) int {
	return work(context.Background(), n) // want `Detach takes ctx but passes context\.Background\(\) to work; thread the caller's context`
}

// DetachTODO is the TODO-flavored detachment.
func DetachTODO(ctx context.Context, n int) int {
	return work(context.TODO(), n) // want `DetachTODO takes ctx but passes context\.TODO\(\) to work`
}

// Threaded passes its own context down: the clean idiom.
func Threaded(ctx context.Context, n int) int {
	return work(ctx, n)
}

// DetachReviewed detaches on purpose, with the review record the analyzer
// asks for; the directive must silence the finding.
func DetachReviewed(ctx context.Context, n int) int {
	//lint:ignore ctxflow the audit pass must finish even when the caller gives up
	return work(context.Background(), n)
}

// Scan is a long scan loop that never consults ctx: it can neither be
// cancelled nor time out.
func Scan(ctx context.Context, vals []int) int {
	acc := 0
	for i := 0; i < len(vals); i++ { // want `loop body \(\d+ nodes\) in Scan never consults ctx; poll ctx`
		v := vals[i]
		a := v * v
		b := a + v
		c := b ^ a
		d := c - v
		e := d | a
		f := e & b
		g := f + c
		h := g * d
		acc += h + a
		acc += b + c + d
		acc += e + f + g
		acc += v ^ h
	}
	return acc
}

// ScanCancellable is the same loop with a poll at the top: mentioning the
// context exempts it.
func ScanCancellable(ctx context.Context, vals []int) int {
	acc := 0
	for i := 0; i < len(vals); i++ {
		if ctx.Err() != nil {
			break
		}
		v := vals[i]
		a := v * v
		b := a + v
		c := b ^ a
		d := c - v
		e := d | a
		f := e & b
		g := f + c
		h := g * d
		acc += h + a
		acc += b + c + d
		acc += e + f + g
		acc += v ^ h
	}
	return acc
}

// Bookkeep's loop is small: below the size threshold, no poll required.
func Bookkeep(ctx context.Context, vals []int) int {
	total := 0
	for _, v := range vals {
		total += v
	}
	return total + len(vals)
}

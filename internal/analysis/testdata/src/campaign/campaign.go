// Package campaign is golden input for the clockrand and detrange
// analyzers in the campaign-runner scope: a campaign must derive every
// run's seed from its grid index (no wall clock, no global rand) and
// aggregate records in sorted order (no map-order leaks).
package campaign

import (
	"math/rand"
	"sort"
	"time"
)

// SeedFromClock derives a campaign seed from the wall clock — the exact
// bug the DerivedSeed(seed, index) scheme exists to prevent.
func SeedFromClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// ShuffledGrid orders grid points with the process-global source.
func ShuffledGrid(points []int) {
	rand.Shuffle(len(points), func(i, j int) { // want `math/rand\.Shuffle draws from the process-global source`
		points[i], points[j] = points[j], points[i]
	})
}

// AggregateByMap walks a per-bug tally in map order and appends into a
// report slice that outlives the loop — the scorecard would depend on
// completion order.
func AggregateByMap(tally map[int]int) []int {
	var rows []int
	for bug := range tally {
		rows = append(rows, bug) // want `append to rows in map-iteration order without a later sort`
	}
	return rows
}

// MeanDepthByMap accumulates a float mean in map order: the low bits of
// the scorecard would jitter run-to-run.
func MeanDepthByMap(depths map[string]float64) float64 {
	var sum float64
	for _, d := range depths {
		sum += d // want `float accumulation in map-iteration order is not bit-reproducible`
	}
	return sum / float64(len(depths))
}

// SortedAggregate is the sanctioned collect-then-sort idiom.
func SortedAggregate(tally map[int]int) []int {
	var rows []int
	for bug := range tally {
		rows = append(rows, bug)
	}
	sort.Ints(rows)
	return rows
}

// DerivedSeed mirrors the runner's pure seed derivation: no clock, no
// global rand, nothing to flag.
func DerivedSeed(seed int64, index int) int64 {
	x := uint64(seed) ^ (uint64(index+1) * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	return int64(x)
}

// Package obsname is the golden input of the metric-namespace analyzer:
// literal names registered through an obs.Registry must match the dotted
// pkg.subsystem.metric grammar and map to exactly one instrument kind.
// Checked under import path "x/metrics" so no other analyzer is in scope.
package obsname

import "tracescale/internal/obs"

// Record registers well-formed names — including the same counter bumped
// from two sites, the normal idiom.
func Record(reg *obs.Registry) {
	reg.Counter("metrics.scan.total").Inc()
	reg.Counter("metrics.scan.total").Inc()
	reg.Gauge("metrics.scan.depth").Set(1)
	reg.Histogram("metrics.scan.latency_ns", []int64{10, 100}).Observe(5)
	reg.Add("metrics.scan.bytes", 64)
}

// BadGrammar registers names outside the dotted grammar.
func BadGrammar(reg *obs.Registry) {
	reg.Counter("Scans").Inc()              // want `metric name "Scans" does not match the pkg\.subsystem\.metric grammar`
	reg.Counter("metrics.Scan.total").Inc() // want `metric name "metrics\.Scan\.total" does not match the pkg\.subsystem\.metric grammar`
	reg.Gauge("metrics..depth_now").Set(2)  // want `metric name "metrics\.\.depth_now" does not match the pkg\.subsystem\.metric grammar`
}

// Shadowed registers one name as two instrument kinds: both sites are
// findings, because one snapshot key holds whichever registered last.
func Shadowed(reg *obs.Registry) {
	reg.Counter("metrics.queue.depth").Inc() // want `metric name "metrics\.queue\.depth" is registered as 2 instrument kinds \(counter, gauge\)`
	reg.Gauge("metrics.queue.depth").Set(0)  // want `metric name "metrics\.queue\.depth" is registered as 2 instrument kinds \(counter, gauge\)`
}

// LegacyName keeps a pre-grammar dashboard key alive under a reviewed
// suppression; the directive must silence the grammar finding.
func LegacyName(reg *obs.Registry) {
	//lint:ignore obsname the v0 dashboard key predates the grammar; renamed in the next schema rev
	reg.Counter("legacyTotal").Inc()
}

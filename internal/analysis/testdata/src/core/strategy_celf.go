// strategy_celf.go is golden input shaped like a Step-2 strategy file: the
// registry refactor split select.go into per-strategy files, and the
// determinism analyzers (detrange, clockrand) are scoped on the core
// package as a whole, so a violation seeded in a strategy file must be
// caught exactly like one in select.go.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// laneGains is a stand-in for a strategy's per-message staging map.
type laneGains map[string]float64

// seedQueueUnsorted leaks map order into the strategy's evaluation queue —
// the bug that would make a lazy-greedy heap nondeterministic across runs.
func seedQueueUnsorted(gains laneGains) []string {
	var queue []string
	for name := range gains {
		queue = append(queue, name) // want `append to queue in map-iteration order without a later sort`
	}
	return queue
}

// seedQueueSorted is the sanctioned collect-then-sort idiom every real
// strategy uses before heapifying.
func seedQueueSorted(gains laneGains) []string {
	var queue []string
	for name := range gains {
		queue = append(queue, name)
	}
	sort.Strings(queue)
	return queue
}

// boundUnsorted accumulates a fractional bound in map order: the float sum
// is not bit-reproducible, so two runs could prune different subtrees.
func boundUnsorted(gains laneGains) float64 {
	bound := 0.0
	for _, g := range gains {
		bound += g // want `float accumulation in map-iteration order is not bit-reproducible`
	}
	return bound
}

// jitterBudget reads the wall clock and the process-global source inside a
// strategy — selection must be a pure function of the evaluator and seed.
func jitterBudget(budget int) int {
	if time.Now().Unix()%2 == 0 { // want `time\.Now reads the wall clock`
		return budget
	}
	return budget - rand.Intn(2) // want `math/rand\.Intn draws from the process-global source`
}

// tieBreakSeeded draws from an injected source: the sanctioned way a
// strategy would randomize (none do, but the analyzer must not flag it).
func tieBreakSeeded(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// Package core is golden input for the detrange analyzer: map ranges whose
// iteration order must not reach persistent state.
package core

import "sort"

// CollectUnsorted leaks map order into the returned slice.
func CollectUnsorted(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name) // want `append to names in map-iteration order without a later sort`
	}
	return names
}

// CollectSorted is the sanctioned collect-then-sort idiom.
func CollectSorted(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SumFloats accumulates floats in map order: not bit-reproducible, and a
// later sort cannot repair it.
func SumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float accumulation in map-iteration order is not bit-reproducible`
	}
	return total
}

// SumInts accumulates integers: order-independent, allowed.
func SumInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// ScaleInPlace writes into a float slot per iteration, but the slot is
// keyed by the iteration itself (a map copy): order-independent.
func ScaleInPlace(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// LocalAccumulator keeps the float state per-iteration: allowed.
func LocalAccumulator(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		sum := 0.0
		for _, v := range vs {
			sum += v
		}
		out[k] = sum
	}
	return out
}

// Audited carries a reviewed suppression: no finding.
func Audited(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//lint:ignore detrange commutative to the bit: audited single-term sums
		total += v
	}
	return total
}

// BadSuppression has an ignore directive with no reason: the directive
// itself is the finding, and it does not silence the real one.
func BadSuppression(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//lint:ignore detrange
		total += v // want `float accumulation in map-iteration order`
	}
	return total
}

// SliceRange ranges over a slice: never flagged.
func SliceRange(xs []float64) float64 {
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total
}

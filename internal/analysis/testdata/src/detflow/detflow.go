// Package detflow is the golden input of the interprocedural
// determinism-taint analyzer: nondeterminism sources (map-iteration order,
// the wall clock) must not reach core.Result construction or JSON
// marshalling without an intervening sort, even across call boundaries.
// Checked under import path "x/serve" so detrange and clockrand stay out
// of scope and only the taint flow is pinned.
package detflow

import (
	"encoding/json"
	"sort"
	"time"

	"tracescale/internal/core"
)

// gather appends map keys in iteration order with no later sort: the taint
// source every caller inherits.
func gather(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// MarshalUnsorted marshals the map-ordered keys straight out: the taint
// crosses the gather call boundary and reaches the sink.
func MarshalUnsorted(m map[string]int) ([]byte, error) {
	keys := gather(m)
	return json.Marshal(keys) // want `json\.Marshal is built while tainted by map-iteration-order append to keys at detflow\.go:\d+ via MarshalUnsorted -> gather`
}

// MarshalSorted canonicalizes before marshalling: the sort call makes this
// frame a taint barrier, so the same gather source is absolved.
func MarshalSorted(m map[string]int) ([]byte, error) {
	keys := gather(m)
	sort.Strings(keys)
	return json.Marshal(keys)
}

// BuildStamped constructs a Result in a frame that read the wall clock.
func BuildStamped(selected []string) core.Result {
	start := time.Now()
	_ = start
	return core.Result{Selected: selected} // want `core\.Result is built while tainted by a wall-clock read \(time\.Now\) at detflow\.go:\d+`
}

// BuildPlain constructs a Result with no source anywhere in its call tree.
func BuildPlain(selected []string) core.Result {
	return core.Result{Selected: selected, Width: len(selected)}
}

// MarshalTimed stamps the marshal for timing metrics; the reviewed clock
// read never reaches the payload, so the suppressed source must not taint.
func MarshalTimed(v []int) ([]byte, error) {
	//lint:ignore detflow the start stamp is timing metadata and never reaches the payload
	start := time.Now()
	_ = start
	return json.Marshal(v)
}

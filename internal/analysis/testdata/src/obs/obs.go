// Package obs is a deliberately broken miniature of the real observability
// layer: golden input for the nilsafe analyzer.
package obs

import "sync"

// Counter violates the contract in several ways and honors it in others.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add touches c.v with no guard.
func (c *Counter) Add(d int64) { // want `exported method \(\*Counter\)\.Add touches receiver fields without a leading nil-receiver guard`
	c.v += d
}

// Inc delegates to a guarded method without touching fields: fine.
func (c *Counter) Inc() { c.Add(1) }

// Value is properly guarded.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Reset guards too late: the lock is taken first.
func (c *Counter) Reset() { // want `exported method \(\*Counter\)\.Reset touches receiver fields without a leading nil-receiver guard`
	c.mu.Lock()
	if c == nil {
		return
	}
	c.v = 0
	c.mu.Unlock()
}

// reset is unexported: out of the contract's scope.
func (c *Counter) reset() { c.v = 0 }

// Gauge checks a disjunctive guard — allowed, the nil test still comes
// first and the branch returns.
type Gauge struct {
	v       int64
	enabled bool
}

// Set has a compound guard with a leading nil test.
func (g *Gauge) Set(v int64) {
	if g == nil || !guardEnabled() {
		return
	}
	g.v = v
}

// Peek guards with the operands reversed (nil == g): still a guard.
func (g *Gauge) Peek() int64 {
	if nil == g {
		return 0
	}
	return g.v
}

// Enabled guards but the branch falls through instead of returning, so a
// nil receiver still reaches the field access.
func (g *Gauge) Enabled() bool { // want `exported method \(\*Gauge\)\.Enabled touches receiver fields`
	if g == nil {
		_ = guardEnabled()
	}
	return g.enabled
}

// ByValue has a value receiver: it can never be nil.
func (g Gauge) ByValue() int64 { return g.v }

func guardEnabled() bool { return true }

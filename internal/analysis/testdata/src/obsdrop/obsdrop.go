// Package obsdrop is golden input for the obsdrop analyzer: a function that
// receives a *obs.Registry must thread it to registry-accepting callees, not
// replace it with a literal nil.
package obsdrop

import "tracescale/internal/obs"

func consume(reg *obs.Registry, n int) {}

func fanout(n int, regs ...*obs.Registry) {}

func other(p *int, reg *obs.Registry) {}

// Drop receives a registry and blackholes it.
func Drop(reg *obs.Registry) {
	consume(nil, 1) // want `Drop receives a \*obs\.Registry but passes nil to consume`
}

// Thread passes the registry through: the contract.
func Thread(reg *obs.Registry) {
	consume(reg, 1)
}

// NoRegistry takes no registry, so its nil is a deliberate opt-out — the
// deliberately-unobserved-wrapper pattern.
func NoRegistry(n int) {
	consume(nil, n)
}

// DropVariadic drops the registry through a variadic parameter.
func DropVariadic(reg *obs.Registry) {
	fanout(1, reg, nil) // want `DropVariadic receives a \*obs\.Registry but passes nil to fanout`
}

// NilForOther passes nil to a non-registry parameter: fine.
func NilForOther(reg *obs.Registry) {
	other(nil, reg)
}

// Package soc is golden input for the clockrand analyzer: the deterministic
// packages may not read the wall clock or the process-global rand source.
package soc

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock twice with no sanction.
func Elapsed() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// Deadline uses time.Until: also a wall-clock read.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until reads the wall clock`
}

// GlobalDie draws from the process-global source.
func GlobalDie() int {
	return rand.Intn(6) // want `math/rand\.Intn draws from the process-global source`
}

// SeededDie builds and uses an injected generator: the constructors and the
// methods on the resulting *rand.Rand are both sanctioned.
func SeededDie(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Timestamp carries a reviewed suppression: registry-gated metrics timing
// is the one legitimate wall-clock use.
func Timestamp() int64 {
	//lint:ignore clockrand registry-gated metrics timing; never reaches results
	return time.Now().UnixNano()
}

// FixedDate constructs a time value without reading the clock: allowed.
func FixedDate() time.Time {
	return time.Unix(0, 0)
}

// Package trustbound is the golden input of the trust-boundary decode
// analyzer: every json.NewDecoder reachable from an HTTP handler must
// DisallowUnknownFields, and the decoding function (or every direct
// caller) must make a validation call. Checked under import path "x/serve"
// so the serve-scoped rule applies.
package trustbound

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
)

type payload struct {
	N int `json:"n"`
}

var errNegative = errors.New("negative n")

// validate is the validation-shaped call the boundary rule looks for.
func validate(p payload) error {
	if p.N < 0 {
		return errNegative
	}
	return nil
}

// decodeLoose decodes handler-reachable input with neither hardening nor
// validation: both findings land here.
func decodeLoose(r *http.Request) (payload, error) { // want `decodeLoose decodes handler-reachable input but neither it nor every direct caller makes a validation call`
	var p payload
	dec := json.NewDecoder(r.Body) // want `json\.NewDecoder reachable from HTTP handler Handle never calls DisallowUnknownFields`
	err := dec.Decode(&p)
	return p, err
}

// Handle is the handler that makes decodeLoose reachable.
func Handle(w http.ResponseWriter, r *http.Request) {
	p, err := decodeLoose(r)
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	_ = p
	w.WriteHeader(http.StatusOK)
}

// decodeStrict hardens the decoder and validates what it decoded: clean.
func decodeStrict(r *http.Request) (payload, error) {
	var p payload
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return p, err
	}
	return p, validate(p)
}

// HandleStrict serves the hardened path.
func HandleStrict(w http.ResponseWriter, r *http.Request) {
	if _, err := decodeStrict(r); err != nil {
		w.WriteHeader(http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// decodeInto hardens the decoder but leaves validation to its callers: the
// decode-here-validate-there split.
func decodeInto(r *http.Request, p *payload) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(p)
}

// HandleSplit is decodeInto's only caller and validates the value itself,
// satisfying the every-direct-caller rule.
func HandleSplit(w http.ResponseWriter, r *http.Request) {
	var p payload
	if err := decodeInto(r, &p); err != nil {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	if err := validate(p); err != nil {
		w.WriteHeader(http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// loadConfig decodes loosely but is reachable from no handler: CLI-side
// decoding is not this analyzer's concern.
func loadConfig(data []byte) (payload, error) {
	var p payload
	err := json.NewDecoder(bytes.NewReader(data)).Decode(&p)
	return p, err
}

// decodeLegacy tolerates unknown fields from v0 clients on purpose; the
// reviewed suppression silences the decoder finding and the validate call
// satisfies the boundary rule.
func decodeLegacy(r *http.Request) (payload, error) {
	var p payload
	//lint:ignore trustbound v0 clients still send retired fields; the value is validated below
	err := json.NewDecoder(r.Body).Decode(&p)
	if err != nil {
		return p, err
	}
	return p, validate(p)
}

// HandleLegacy serves the tolerated legacy path.
func HandleLegacy(w http.ResponseWriter, r *http.Request) {
	if _, err := decodeLegacy(r); err != nil {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// Package broken fails to typecheck on purpose: driver tests assert that the
// checker surfaces the error instead of analyzing a half-typed package.
package broken

func Busted() int {
	return "not an int"
}

// Package analysis is tracescale's static-analysis suite: a dependency-free
// driver (go list + go/parser + go/types, no x/tools) hosting repo-specific
// analyzers that machine-check the invariants the rest of the stack merely
// promises in comments — the obs nil-safe contract, the parallel ≡ serial
// determinism of selection, the reproducibility of simulation runs, and the
// threading of observability registries. The paper's results are only
// evidence if runs are bit-reproducible; these analyzers turn that
// discipline from convention into a compile-adjacent gate (cmd/tracelint).
//
// # Analyzers
//
//   - nilsafe: every exported pointer-receiver method in internal/obs that
//     touches a receiver field must begin with a nil-receiver guard (the
//     obs package's documented contract).
//   - detrange: in internal/{core,interleave,flow}, a range over a map must
//     not let iteration order reach persistent state — appends to slices
//     declared outside the loop (unless sorted afterwards) or float
//     accumulation, both of which would break the parallel ≡ serial and
//     run-to-run bit-reproducibility invariants.
//   - clockrand: internal/{core,interleave,flow,soc,info} must not read the
//     wall clock (time.Now/Since/Until) or the global math/rand source;
//     randomness is injected as a seeded *rand.Rand and the only sanctioned
//     wall-clock use is the registry-gated metrics-timing allowlist,
//     annotated with //lint:ignore clockrand.
//   - obsdrop: a function that receives a *obs.Registry parameter must
//     thread it to registry-accepting callees, never pass a literal nil —
//     a nil here silently blackholes every metric downstream.
//
// Four interprocedural analyzers run over the merged fact sets of the whole
// package graph (the two-phase facts engine — see facts.go, callgraph.go):
//
//   - detflow: nondeterminism taint must not reach Result/ShardResult
//     construction or encoding/json marshalling in
//     internal/{core,interleave,serve,pipeline} without an intervening
//     sort/canonicalization — detrange generalized across call boundaries.
//   - ctxflow: a context-taking function must thread its ctx — a literal
//     context.Background()/TODO() handed to a ctx-accepting callee is a
//     finding, as is an oversized loop that never consults the context.
//   - trustbound: every json.NewDecoder reachable from an HTTP handler in
//     internal/serve must DisallowUnknownFields and be validation-checked.
//   - obsname: obs metric name literals must match pkg.subsystem.metric
//     and be unique to one package and one instrument kind.
//
// # Suppressions
//
// A diagnostic is suppressed by a comment on the same line or the line
// directly above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a reasonless ignore is itself reported. The
// suppression applies to exactly one analyzer at one site — there is no
// file- or package-level opt-out.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is one analyzed package presented to an analyzer: its parsed files
// and full type information.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string

	diags *[]Diagnostic
	cur   string // name of the analyzer currently running
}

// Reportf records a finding for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportPosf(p.Fset.Position(pos), format, args...)
}

// ReportPosf is Reportf for already-resolved positions — the form fact
// sites carry.
func (p *Pass) ReportPosf(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.cur,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name is the analyzer's identifier: the [name] tag in diagnostics and
	// the key //lint:ignore comments suppress by.
	Name string
	// Doc is a one-line description.
	Doc string
	// Scope restricts the analyzer to packages whose import path contains
	// one of these elements as a full path segment ("obs" matches
	// tracescale/internal/obs but not tracescale/internal/observe). An
	// empty scope means every package.
	Scope []string
	// Run inspects one package, reporting findings through pass.Reportf.
	// Local analyzers set Run or FactsRun; interprocedural analyzers set
	// GlobalRun instead (exactly one of the three must be non-nil).
	Run func(pass *Pass)
	// FactsRun is a local analyzer driven by the package's phase-1 fact
	// set instead of walking the AST itself.
	FactsRun func(pass *Pass, pf *PkgFacts)
	// GlobalRun inspects the merged fact Unit once per analysis run,
	// reporting findings through gp.Report. Scope still applies: global
	// analyzers must self-filter sites by package path via gp.InScope.
	GlobalRun func(gp *GlobalPass)
}

// GlobalPass is the interprocedural analyzer's view: the merged fact Unit
// for every analyzed package, plus a reporter for position-carrying facts.
type GlobalPass struct {
	Unit *Unit

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Report records a finding at a fact's resolved position.
func (g *GlobalPass) Report(pos token.Position, format string, args ...any) {
	*g.diags = append(*g.diags, Diagnostic{
		Pos:      pos,
		Analyzer: g.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InScope reports whether the analyzer's scope covers the import path.
func (g *GlobalPass) InScope(importPath string) bool {
	return g.analyzer.inScope(importPath)
}

// inScope reports whether the analyzer applies to the import path.
func (a *Analyzer) inScope(importPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, seg := range strings.Split(importPath, "/") {
		for _, want := range a.Scope {
			if seg == want {
				return true
			}
		}
	}
	return false
}

// All returns the full tracelint analyzer suite: the four local analyzers
// plus the four interprocedural ones running over the merged facts.
func All() []*Analyzer {
	return []*Analyzer{NilSafe, DetRange, ClockRand, ObsDrop, DetFlow, CtxFlow, TrustBound, ObsName}
}

// ByName returns the subset of All with the given names, erroring on an
// unknown name.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Analyze runs the analyzers over one typechecked package and returns the
// surviving (unsuppressed) findings, including any malformed-suppression
// diagnostics. The result is sorted by position then analyzer name.
// Interprocedural analyzers treat the single package as the whole graph —
// the engine (AnalyzeGraph) is the multi-package entry point.
func Analyze(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	return AnalyzeGraph([]*Pass{pass}, []*PkgFacts{CollectFacts(pass)}, analyzers)
}

// AnalyzeGraph is phase 2 of the facts engine: it runs local analyzers per
// pass and global (interprocedural) analyzers once over the merged fact
// sets, applies suppressions from every pass, and returns the surviving
// findings sorted by position then analyzer name. passes and facts are
// parallel slices (facts[i] collected from passes[i]).
func AnalyzeGraph(passes []*Pass, facts []*PkgFacts, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for i, pass := range passes {
		pass.diags = &diags
		for _, a := range analyzers {
			if !a.inScope(pass.ImportPath) {
				continue
			}
			pass.cur = a.Name
			if a.Run != nil {
				a.Run(pass)
			}
			if a.FactsRun != nil {
				a.FactsRun(pass, facts[i])
			}
		}
	}
	unit := MergeFacts(facts)
	for _, a := range analyzers {
		if a.GlobalRun == nil {
			continue
		}
		a.GlobalRun(&GlobalPass{Unit: unit, analyzer: a, diags: &diags})
	}
	sup := make(suppressionSet)
	var malformed []Diagnostic
	for _, pass := range passes {
		s, m := suppressions(pass)
		for k := range s {
			sup[k] = true
		}
		malformed = append(malformed, m...)
	}
	kept := diags[:0]
	for _, d := range diags {
		if sup.covers(d) {
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, malformed...)
	sortDiagnostics(kept)
	return kept
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreKey locates one suppression: a file, a line, and the analyzer it
// silences.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type suppressionSet map[ignoreKey]bool

// covers reports whether the diagnostic is silenced by an ignore comment on
// its own line or the line directly above.
func (s suppressionSet) covers(d Diagnostic) bool {
	return s[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		s[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
}

const ignorePrefix = "//lint:ignore"

// suppressions scans the pass's comments for //lint:ignore directives,
// returning the well-formed set and a diagnostic per malformed directive
// (missing analyzer name or reason — suppressing without saying why is
// exactly the convention-rot this suite exists to prevent).
func suppressions(pass *Pass) (suppressionSet, []Diagnostic) {
	set := make(suppressionSet)
	var malformed []Diagnostic
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      pass.Fset.Position(c.Pos()),
						Analyzer: "tracelint",
						Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				set[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return set, malformed
}

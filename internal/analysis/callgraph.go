package analysis

import "sort"

// This file is the merge half of the facts engine: per-package fact sets
// become one Unit — a whole-program (well, whole-`go list` graph) view the
// interprocedural analyzers run over. Merging is pure data plumbing: no
// types.Package pointers cross package boundaries, only canonical string
// FuncIDs, which is why packages typechecked by independent importers still
// produce one coherent call graph.
//
// Soundness limits (documented in DESIGN.md §12): dynamic dispatch is
// resolved only as declared-interface fan-out — a call through a named
// interface becomes edges to every declared implementation visible at
// collection time. Calls through plain function values, reflection, and
// method expressions are not tracked. The graph otherwise over-approximates:
// a function value referenced (not called) still contributes an edge, so
// handlers registered with HandleFunc stay reachable.

// Unit is the merged analysis unit: every analyzed package's facts plus the
// resolved call-graph adjacency.
type Unit struct {
	// Funcs maps canonical FuncID to facts, across all merged packages.
	Funcs map[string]*FuncFacts
	// Pkgs maps import path to the package's fact set.
	Pkgs map[string]*PkgFacts
	// callees is the resolved adjacency: interface-method callees are
	// fanned out to their declared implementations, deduped, sorted.
	callees map[string][]string
}

// MergeFacts builds the Unit from per-package fact sets.
func MergeFacts(pkgs []*PkgFacts) *Unit {
	u := &Unit{
		Funcs:   make(map[string]*FuncFacts),
		Pkgs:    make(map[string]*PkgFacts),
		callees: make(map[string][]string),
	}
	impls := make(map[string][]string)
	for _, pf := range pkgs {
		u.Pkgs[pf.Path] = pf
		for _, ff := range pf.Funcs {
			u.Funcs[ff.ID] = ff
		}
		for iface, concrete := range pf.Impls {
			impls[iface] = append(impls[iface], concrete...)
		}
	}
	for iface := range impls {
		impls[iface] = dedupeSorted(impls[iface])
	}
	for id, ff := range u.Funcs {
		seen := make(map[string]bool)
		var out []string
		add := func(callee string) {
			if callee != id && !seen[callee] {
				seen[callee] = true
				out = append(out, callee)
			}
		}
		for _, cs := range ff.Calls {
			if fanned, ok := impls[cs.Callee]; ok {
				for _, impl := range fanned {
					add(impl)
				}
				continue
			}
			add(cs.Callee)
		}
		sort.Strings(out)
		u.callees[id] = out
	}
	return u
}

func dedupeSorted(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Callees returns the resolved outgoing edges of a function (sorted,
// interface calls fanned out to declared implementations).
func (u *Unit) Callees(id string) []string { return u.callees[id] }

// FuncIDs returns every merged function ID in sorted order — the
// deterministic iteration order global analyzers must use.
func (u *Unit) FuncIDs() []string {
	ids := make([]string, 0, len(u.Funcs))
	for id := range u.Funcs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// PkgPaths returns every merged import path in sorted order.
func (u *Unit) PkgPaths() []string {
	paths := make([]string, 0, len(u.Pkgs))
	for p := range u.Pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// hasLiveSource reports an unsuppressed nondeterminism source in the frame.
func hasLiveSource(ff *FuncFacts) bool {
	for _, s := range ff.Sources {
		if !s.Ignored {
			return true
		}
	}
	return false
}

// TaintLeaks computes, by fixed point over the call graph, the set of
// functions that leak nondeterministic ordering to their callers: the frame
// has a live source (or a callee that leaks) and does not canonicalize
// (call into sort/slices). Canonicalizing frames are taint barriers — the
// collect-then-sort idiom absolves everything below them. The returned via
// map records, for each leaking function tainted only transitively, one
// witness callee on a path to a source (for diagnostics).
func (u *Unit) TaintLeaks() (leaks map[string]bool, via map[string]string) {
	leaks = make(map[string]bool)
	via = make(map[string]string)
	ids := u.FuncIDs()
	for _, id := range ids {
		ff := u.Funcs[id]
		if !ff.Canonicalizes && hasLiveSource(ff) {
			leaks[id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			ff := u.Funcs[id]
			if leaks[id] || ff.Canonicalizes {
				continue
			}
			for _, callee := range u.callees[id] {
				if leaks[callee] {
					leaks[id] = true
					via[id] = callee
					changed = true
					break
				}
			}
		}
	}
	return leaks, via
}

// TaintWitness renders one source-bound call path for a leaking function:
// the chain of short names from id down to a frame with its own live
// source, plus that source site. Paths exist by construction of via.
func (u *Unit) TaintWitness(id string, via map[string]string) (path []string, src Site) {
	seen := make(map[string]bool)
	for !seen[id] {
		seen[id] = true
		ff := u.Funcs[id]
		path = append(path, ff.Short)
		if hasLiveSource(ff) {
			for _, s := range ff.Sources {
				if !s.Ignored {
					return path, s
				}
			}
		}
		next, ok := via[id]
		if !ok {
			break
		}
		id = next
	}
	return path, Site{}
}

// ReachableFrom returns the set of function IDs reachable from the given
// roots (inclusive) over the resolved adjacency.
func (u *Unit) ReachableFrom(roots []string) map[string]bool {
	reached := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if reached[id] {
			continue
		}
		reached[id] = true
		for _, callee := range u.callees[id] {
			if !reached[callee] {
				queue = append(queue, callee)
			}
		}
	}
	return reached
}

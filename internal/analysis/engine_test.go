package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// multiPkgModule writes a throwaway module with findings spread across
// four packages, so a parallel run has real work to order deterministically:
// soc (clockrand), flow (detrange), campaign (clockrand + detrange), and
// core (clockrand + a detflow-tainted marshal).
func multiPkgModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("soc/soc.go", `package soc

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	write("flow/flow.go", `package flow

func Total(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}
`)
	write("campaign/campaign.go", `package campaign

import "math/rand"

func Pick(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	_ = rand.Intn(3)
	return keys
}
`)
	write("core/core.go", `package core

import (
	"encoding/json"
	"time"
)

func stamp() int64 { return time.Now().UnixNano() }

func Export(v []int) ([]byte, error) {
	_ = stamp()
	return json.Marshal(v)
}
`)
	return dir
}

// TestRunParallelByteStable pins the acceptance criterion the -workers flag
// promises: diagnostics are byte-identical at every worker count.
func TestRunParallelByteStable(t *testing.T) {
	dir := multiPkgModule(t)
	render := func(diags []Diagnostic) string {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteString("\n")
		}
		return sb.String()
	}
	serial, err := RunParallel(dir, []string{"./..."}, All(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 6 {
		t.Fatalf("got %d findings, want 6:\n%s", len(serial), render(serial))
	}
	// The detflow finding must cross the Export -> stamp call boundary.
	var sawDetflow bool
	for _, d := range serial {
		if d.Analyzer == "detflow" && strings.Contains(d.Message, "via Export -> stamp") {
			sawDetflow = true
		}
	}
	if !sawDetflow {
		t.Errorf("missing the interprocedural detflow finding:\n%s", render(serial))
	}
	want := render(serial)
	for _, workers := range []int{2, 4, 7} {
		got, err := RunParallel(dir, []string{"./..."}, All(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != want {
			t.Errorf("workers=%d diverges from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
				workers, want, workers, render(got))
		}
	}
}

// TestRunParallelErrorDeterministic pins error selection: whichever worker
// hits the broken package first, the reported error is the same.
func TestRunParallelErrorDeterministic(t *testing.T) {
	dir := multiPkgModule(t)
	if err := os.MkdirAll(filepath.Join(dir, "bad"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "bad", "bad.go"), "package bad\n\nfunc Broken() { return undefinedSymbol }\n")
	var first string
	for _, workers := range []int{1, 4} {
		_, err := RunParallel(dir, []string{"./..."}, All(), workers)
		if err == nil {
			t.Fatalf("workers=%d: expected a typecheck error", workers)
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Errorf("workers=%d error %q differs from serial %q", workers, err.Error(), first)
		}
	}
	if !strings.Contains(first, "bad") {
		t.Errorf("error %q does not name the broken package", first)
	}
}

package analysis

import (
	"sort"
	"strings"
)

// ObsName guards the metric namespace the counter-exact tests depend on.
// Every literal name registered through an obs.Registry (Counter, Gauge,
// Histogram, Add) must
//
//   - match the dotted pkg.subsystem.metric grammar: at least two
//     dot-separated segments, each [a-z][a-z0-9_]*;
//   - name exactly one instrument kind: the same literal registered as
//     both a counter and a gauge (or histogram) silently shadows — both
//     sites appear to work, one snapshot key holds whichever registered
//     last;
//   - belong to exactly one package: the same literal registered from two
//     packages is cross-layer shadowing, the failure mode that would
//     corrupt a fault-matrix scorecard without any test noticing.
//
// Re-registering the same name with the same kind inside one package is
// the normal idiom (a counter bumped from several sites) and is fine.
// Dynamically built names (fmt.Sprintf, concatenation) are outside the
// analyzer's reach and are not checked.
var ObsName = &Analyzer{
	Name:      "obsname",
	Doc:       "obs metric name literals must match pkg.subsystem.metric and be unique to one package and instrument kind",
	GlobalRun: runObsName,
}

// metricKind folds the registration methods into instrument kinds: Add is
// a counter-increment, so Counter and Add name the same instrument.
func metricKind(method string) string {
	if method == "Counter" || method == "Add" {
		return "counter"
	}
	return strings.ToLower(method)
}

func runObsName(gp *GlobalPass) {
	u := gp.Unit
	type site struct {
		pkg string
		MetricSite
	}
	byName := make(map[string][]site)
	for _, path := range u.PkgPaths() {
		pf := u.Pkgs[path]
		for _, m := range pf.Metrics {
			if !gp.InScope(path) {
				continue
			}
			if !validMetricName(m.Name) {
				gp.Report(m.Pos,
					"metric name %q does not match the pkg.subsystem.metric grammar (two or more dot-separated [a-z][a-z0-9_]* segments)",
					m.Name)
			}
			byName[m.Name] = append(byName[m.Name], site{pkg: path, MetricSite: m})
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sites := byName[n]
		pkgs := map[string]bool{}
		kinds := map[string]bool{}
		for _, s := range sites {
			pkgs[s.pkg] = true
			kinds[metricKind(s.Method)] = true
		}
		if len(pkgs) > 1 {
			for _, s := range sites {
				gp.Report(s.Pos,
					"metric name %q is registered from %d packages (%s); names must be unique to one package or snapshots shadow across layers",
					n, len(pkgs), joinSorted(pkgs))
			}
		}
		if len(kinds) > 1 {
			for _, s := range sites {
				gp.Report(s.Pos,
					"metric name %q is registered as %d instrument kinds (%s); one name must map to one instrument or the snapshot key shadows",
					n, len(kinds), joinSorted(kinds))
			}
		}
	}
}

// validMetricName matches the dotted grammar: ≥2 segments, each
// [a-z][a-z0-9_]*.
func validMetricName(name string) bool {
	segs := strings.Split(name, ".")
	if len(segs) < 2 {
		return false
	}
	for _, seg := range segs {
		if seg == "" || seg[0] < 'a' || seg[0] > 'z' {
			return false
		}
		for i := 1; i < len(seg); i++ {
			c := seg[i]
			if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
				return false
			}
		}
	}
	return true
}

func joinSorted(set map[string]bool) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// graphSrc is a hand-drawn ten-function package exercising every call-graph
// shape the collector resolves: direct calls, transitive chains, the
// sort-barrier, and declared-interface fan-out.
const graphSrc = `package graph

import (
	"sort"
	"time"
)

type I interface{ M() int }

type T1 struct{}

func (T1) M() int { return 1 }

type T2 struct{}

// T2.M reads the wall clock: a nondeterminism source behind the interface.
func (T2) M() int { return int(time.Now().Unix()) }

// C reads the clock directly.
func C() int { return int(time.Now().UnixNano()) }

// D is pure.
func D() int { return 4 }

// B calls only the pure D.
func B() int { return D() }

// A calls B (clean chain) and C (tainted chain).
func A() int { return B() + C() }

// E appends in map-iteration order without a later sort.
func E(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// F consumes E but sorts: a canonicalizing barrier.
func F(m map[string]int) []string {
	keys := E(m)
	sort.Strings(keys)
	return keys
}

// G sits above the barrier.
func G(m map[string]int) int { return len(F(m)) }

// H dispatches through the interface: fan-out to both implementations.
func H(v I) int { return v.M() }
`

func checkGraphUnit(t *testing.T) *Unit {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "graph.go"), graphSrc)
	pass, err := NewChecker().CheckDir(dir, "x/graph")
	if err != nil {
		t.Fatal(err)
	}
	return MergeFacts([]*PkgFacts{CollectFacts(pass)})
}

// TestCallGraphEdges pins the resolved adjacency, including the
// declared-interface fan-out of H's dynamic call.
func TestCallGraphEdges(t *testing.T) {
	u := checkGraphUnit(t)
	wantEdges := map[string][]string{
		"x/graph.A": {"x/graph.B", "x/graph.C"},
		"x/graph.B": {"x/graph.D"},
		"x/graph.D": {},
		"x/graph.F": {"sort.Strings", "x/graph.E"},
		"x/graph.G": {"x/graph.F"},
		"x/graph.H": {"x/graph.(T1).M", "x/graph.(T2).M"},
	}
	for id, want := range wantEdges {
		got := u.Callees(id)
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Errorf("Callees(%s) = %v, want %v", id, got, want)
		}
	}
	if _, ok := u.Funcs["x/graph.(T2).M"]; !ok {
		t.Fatalf("merged unit is missing the T2.M facts; have %v", u.FuncIDs())
	}
}

// TestCallGraphTaintClosure pins the transitive-source closure: taint flows
// A<-C and H<-T2.M, and the canonicalizing F absolves E's source for G.
func TestCallGraphTaintClosure(t *testing.T) {
	u := checkGraphUnit(t)
	leaks, via := u.TaintLeaks()
	want := map[string]bool{
		"x/graph.A":      true,  // transitively via C
		"x/graph.B":      false, // only the pure D below
		"x/graph.C":      true,  // own clock read
		"x/graph.D":      false,
		"x/graph.E":      true,  // own map-order append
		"x/graph.F":      false, // sorts: the barrier
		"x/graph.G":      false, // everything below the barrier is absolved
		"x/graph.H":      true,  // via the interface fan-out to T2.M
		"x/graph.(T1).M": false,
		"x/graph.(T2).M": true, // own clock read
	}
	for id, w := range want {
		if leaks[id] != w {
			t.Errorf("leaks[%s] = %v, want %v", id, leaks[id], w)
		}
	}
	path, src := u.TaintWitness("x/graph.A", via)
	if strings.Join(path, " -> ") != "A -> C" {
		t.Errorf("witness path for A = %v, want A -> C", path)
	}
	if src.Kind != SrcClock {
		t.Errorf("witness source kind for A = %q, want %q", src.Kind, SrcClock)
	}
	if path, _ := u.TaintWitness("x/graph.H", via); strings.Join(path, " -> ") != "H -> (T2).M" {
		t.Errorf("witness path for H = %v, want H -> (T2).M", path)
	}
}

// TestCallGraphReachability pins ReachableFrom over the same graph: roots
// are inclusive and the walk follows the fanned-out edges.
func TestCallGraphReachability(t *testing.T) {
	u := checkGraphUnit(t)
	reached := u.ReachableFrom([]string{"x/graph.A"})
	for _, id := range []string{"x/graph.A", "x/graph.B", "x/graph.C", "x/graph.D"} {
		if !reached[id] {
			t.Errorf("%s not reached from A", id)
		}
	}
	for _, id := range []string{"x/graph.E", "x/graph.H", "x/graph.(T2).M"} {
		if reached[id] {
			t.Errorf("%s wrongly reached from A", id)
		}
	}
	if r := u.ReachableFrom([]string{"x/graph.H"}); !r["x/graph.(T1).M"] || !r["x/graph.(T2).M"] {
		t.Error("interface fan-out edges missing from H's reachability")
	}
}

// TestObsNameCrossPackage merges two fact sets that register the same
// metric literal and expects the cross-package duplicate finding at every
// site — the shadowing case a single-package analysis cannot see.
func TestObsNameCrossPackage(t *testing.T) {
	mk := func(pkg string) string {
		return `package ` + pkg + `

import "tracescale/internal/obs"

func Record(reg *obs.Registry) {
	reg.Counter("shared.dup.total").Inc()
}
`
	}
	var passes []*Pass
	var facts []*PkgFacts
	for _, name := range []string{"alpha", "beta"} {
		dir := t.TempDir()
		writeFile(t, filepath.Join(dir, name+".go"), mk(name))
		pass, err := NewChecker().CheckDir(dir, "x/"+name)
		if err != nil {
			t.Fatal(err)
		}
		passes = append(passes, pass)
		facts = append(facts, CollectFacts(pass))
	}
	diags := AnalyzeGraph(passes, facts, []*Analyzer{ObsName})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (one per site): %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, `"shared.dup.total" is registered from 2 packages (x/alpha, x/beta)`) {
			t.Errorf("unexpected message: %s", d)
		}
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is phase 1 of the two-phase analysis engine: per-package fact
// collection. A FuncFacts is a plain-data summary of one function — who it
// calls (the static call graph), which nondeterminism sources it touches,
// which result types it constructs, how it handles contexts, decoders, and
// metric names. Fact sets are independent of any analyzer: they are
// collected once per package, cached by the engine, merged across the
// `go list` package graph, and then phase 2 (the interprocedural analyzers)
// runs over the merged Unit without ever re-reading source.
//
// Everything in a fact set is serializable plain data (positions are
// resolved token.Positions, functions are canonical string IDs), so facts
// survive being merged across packages that were typechecked separately.

// Source kinds: the nondeterminism sources detflow taints through.
const (
	SrcMapAppend  = "mapappend" // map-range append to loop-outlived state, no later sort
	SrcMapFloat   = "mapfloat"  // float compound-assignment in map-range order
	SrcClock      = "clock"     // time.Now / Since / Until
	SrcGlobalRand = "grand"     // package-global math/rand draw
)

// Sink kinds: where detflow forbids tainted data to arrive.
const (
	SinkResult      = "result"      // core.Result composite literal
	SinkShardResult = "shardresult" // core.ShardResult composite literal
	SinkMarshal     = "marshal"     // encoding/json marshal or Encoder.Encode
)

// Site is one fact anchored to a source position.
type Site struct {
	Pos    token.Position
	Kind   string
	Detail string
	// Ignored marks a source site whose line carries a reviewed
	// //lint:ignore for the site's native analyzer (or for detflow): the
	// site still exists, but taint analysis must not propagate it — that is
	// how the registry-gated metrics-timing allowlist keeps core.Select
	// from tainting every Result it builds.
	Ignored bool
}

// CallSite is one outgoing call-graph edge: the callee's canonical ID.
// Interface-method callees carry the "iface:" prefix and are fanned out to
// declared implementations when fact sets merge.
type CallSite struct {
	Pos    token.Position
	Callee string
}

// DecoderSite is one json.NewDecoder construction and whether the decoder
// variable receives a DisallowUnknownFields call in the same function.
type DecoderSite struct {
	Pos      token.Position
	Disallow bool
}

// MetricSite is one obs metric registration with a literal name: a call to
// Registry.Counter / Gauge / Histogram / Add whose name argument is a
// string literal.
type MetricSite struct {
	Pos    token.Position
	Name   string
	Method string
}

// NilGuardSite is one exported pointer-receiver method that touches
// receiver fields without a leading nil guard.
type NilGuardSite struct {
	Pos      token.Position
	TypeName string
	Method   string
}

// NilRegSite is one literal nil passed to a *obs.Registry parameter by a
// function that itself receives a registry.
type NilRegSite struct {
	Pos    token.Position
	Func   string // the dropping function's name
	Callee string // rendered callee expression
}

// LoopSite is one for/range statement inside a context-taking function
// whose body exceeds the size threshold without mentioning the context.
type LoopSite struct {
	Pos   token.Position
	Nodes int
}

// FuncFacts summarizes one declared function or method.
type FuncFacts struct {
	ID      string // canonical cross-package identifier
	Short   string // display name, e.g. RunShard or (*HTTPRunner).RunShard
	PkgPath string
	Pos     token.Position

	Calls   []CallSite
	Sources []Site
	Sinks   []Site
	// Canonicalizes: the function calls into package sort or slices — the
	// collect-then-sort idiom. detflow treats such a frame as a taint
	// barrier: nondeterministic order below it does not leak past it.
	Canonicalizes bool

	// Context facts.
	TakesCtx    bool
	CtxName     string
	CtxBadCalls []Site     // context.Background()/TODO() handed to a ctx parameter
	CtxLoops    []LoopSite // oversized loops that never mention the context

	// Trust-boundary facts.
	HTTPHandler bool
	Decoders    []DecoderSite
	Validates   bool

	// Ported-analyzer facts.
	NilGuards []NilGuardSite
	NilRegs   []NilRegSite
	// HasRegistryParam marks functions handed a *obs.Registry (the obsdrop
	// precondition).
	HasRegistryParam bool
}

// PkgFacts is one package's fact set.
type PkgFacts struct {
	Path  string
	Funcs []*FuncFacts
	// Impls maps an interface method ID ("iface:pkg.Iface.Method") to the
	// concrete method IDs of declared implementations visible from this
	// package (its own scope plus direct imports) — the declared-interface
	// fan-out the call graph resolves dynamic dispatch with.
	Impls map[string][]string
	// Metrics lists every literal obs metric-name registration.
	Metrics []MetricSite
}

// FuncID returns the canonical cross-package identifier of a function
// object: pkgpath.Name for package functions, pkgpath.(Type).Name for
// methods (pointerness erased, generics folded to their origin). Two
// packages typechecked independently agree on the ID of a shared function,
// which is what lets fact sets merge.
func FuncID(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	return pkg + ".(" + recvTypeName(sig.Recv().Type()) + ")." + fn.Name()
}

// ifaceMethodID is the placeholder callee ID of a dynamic call through a
// named interface.
func ifaceMethodID(named *types.Named, method string) string {
	obj := named.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return "iface:" + pkg + "." + obj.Name() + "." + method
}

// recvTypeName names a receiver's base type ("" when unnamed).
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	case *types.Interface:
		return ""
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// pathHasSegment reports whether one of wants appears as a full segment of
// the slash-separated import path — the same matching Analyzer.Scope uses.
func pathHasSegment(path string, wants ...string) bool {
	for _, seg := range strings.Split(path, "/") {
		for _, want := range wants {
			if seg == want {
				return true
			}
		}
	}
	return false
}

// CollectFacts runs phase 1 over one typechecked package.
func CollectFacts(pass *Pass) *PkgFacts {
	sup, _ := suppressions(pass)
	pf := &PkgFacts{Path: pass.ImportPath, Impls: make(map[string][]string)}
	c := &collector{pass: pass, pf: pf, sup: sup}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				c.collectFunc(fd)
			}
		}
	}
	c.collectPackageLevel()
	c.collectImpls()
	sort.Slice(pf.Funcs, func(i, j int) bool { return pf.Funcs[i].ID < pf.Funcs[j].ID })
	sort.Slice(pf.Metrics, func(i, j int) bool {
		a, b := pf.Metrics[i], pf.Metrics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line || (a.Pos.Line == b.Pos.Line && a.Pos.Column < b.Pos.Column)
	})
	for _, impls := range pf.Impls {
		sort.Strings(impls)
	}
	return pf
}

type collector struct {
	pass *Pass
	pf   *PkgFacts
	sup  suppressionSet
}

// ignoredAt reports whether a //lint:ignore for any of the analyzers
// covers the position (same line or the line above).
func (c *collector) ignoredAt(pos token.Position, analyzers ...string) bool {
	for _, a := range analyzers {
		if c.sup[ignoreKey{pos.Filename, pos.Line, a}] || c.sup[ignoreKey{pos.Filename, pos.Line - 1, a}] {
			return true
		}
	}
	return false
}

func (c *collector) position(pos token.Pos) token.Position {
	return c.pass.Fset.Position(pos)
}

func (c *collector) collectFunc(fd *ast.FuncDecl) {
	fn, ok := c.pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	ff := &FuncFacts{
		ID:      FuncID(fn),
		Short:   shortName(fd),
		PkgPath: c.pass.ImportPath,
		Pos:     c.position(fd.Name.Pos()),
	}
	sig := fn.Type().(*types.Signature)
	ff.HTTPHandler = isHandlerSignature(sig)
	ff.HasRegistryParam = hasRegistryParam(sig)
	ff.TakesCtx, ff.CtxName = ctxParam(sig)

	if fd.Body != nil {
		c.collectCalls(ff, fd.Body)
		c.collectSources(ff, fd.Body)
		c.collectSinks(ff, fd.Body)
		c.collectCtx(ff, fd)
		c.collectDecoders(ff, fd.Body)
		c.collectMetrics(fd.Body)
		c.collectNilRegs(ff, fd)
	}
	if site, ok := collectNilGuard(c.pass, fd); ok {
		site.Pos = c.position(site.rawPos)
		ff.NilGuards = append(ff.NilGuards, site.NilGuardSite)
	}
	c.pf.Funcs = append(c.pf.Funcs, ff)
}

// collectPackageLevel sweeps package-level variable initializers into one
// synthetic fact set per package, so clock/global-rand draws outside any
// function body (`var start = time.Now()`) survive the port onto facts.
func (c *collector) collectPackageLevel() {
	var ff *FuncFacts
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					if ff == nil {
						ff = &FuncFacts{
							ID:      c.pass.ImportPath + ".(package-init)",
							Short:   "(package-init)",
							PkgPath: c.pass.ImportPath,
							Pos:     c.position(gd.Pos()),
						}
					}
					c.collectClockRandSources(ff, v)
				}
			}
		}
	}
	if ff != nil {
		sortSites(ff.Sources)
		c.pf.Funcs = append(c.pf.Funcs, ff)
	}
}

func shortName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// collectCalls records every resolvable outgoing edge: called functions,
// called methods (interface calls as "iface:" placeholders), and
// referenced function values (a function handed to HandleFunc or a
// goroutine is assumed callable — the call graph over-approximates rather
// than losing the edge).
func (c *collector) collectCalls(ff *FuncFacts, body *ast.BlockStmt) {
	seen := make(map[string]bool)
	add := func(pos token.Pos, id string) {
		if id == "" || seen[id] {
			return
		}
		seen[id] = true
		ff.Calls = append(ff.Calls, CallSite{Pos: c.position(pos), Callee: id})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			// Package-level functions only: methods are resolved through
			// their SelectorExpr so interface dispatch fans out correctly.
			if fn, ok := c.pass.Info.Uses[e].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					add(e.Pos(), FuncID(fn))
				}
			}
		case *ast.SelectorExpr:
			sel := c.pass.Info.Selections[e]
			if sel == nil || sel.Kind() != types.MethodVal {
				return true
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return true
			}
			recv := sel.Recv()
			if _, isIface := recv.Underlying().(*types.Interface); isIface {
				if named, ok := types.Unalias(recv).(*types.Named); ok {
					add(e.Sel.Pos(), ifaceMethodID(named, fn.Name()))
					return true
				}
			}
			add(e.Sel.Pos(), FuncID(fn))
		}
		return true
	})
	sort.Slice(ff.Calls, func(i, j int) bool { return ff.Calls[i].Callee < ff.Calls[j].Callee })
}

// collectSources gathers the nondeterminism sources: detrange-shaped map
// ranges and clockrand-shaped clock/global-rand draws. The detrange and
// clockrand analyzers report these same sites per package; detflow taints
// them across calls.
func (c *collector) collectSources(ff *FuncFacts, body *ast.BlockStmt) {
	// Map-iteration order escaping the loop (the detrange conditions).
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := c.pass.Info.Types[rng.X].Type; t == nil || !isMap(t) {
			return true
		}
		c.collectMapRange(ff, body, rng)
		return true
	})
	// Wall-clock reads and global math/rand draws.
	c.collectClockRandSources(ff, body)
	sortSites(ff.Sources)
	if hasSortCall(c.pass, body) {
		ff.Canonicalizes = true
	}
}

// collectClockRandSources appends clock and global-rand source sites found
// anywhere under node (the clockrand conditions).
func (c *collector) collectClockRandSources(ff *FuncFacts, node ast.Node) {
	ast.Inspect(node, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := c.pass.Info.Uses[ident].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return true
		}
		pos := c.position(ident.Pos())
		switch path := fn.Pkg().Path(); {
		case path == "time" && clockFuncs[fn.Name()]:
			ff.Sources = append(ff.Sources, Site{
				Pos: pos, Kind: SrcClock, Detail: "time." + fn.Name(),
				Ignored: c.ignoredAt(pos, "clockrand", "detflow"),
			})
		case isMathRand(path) && !randConstructors[fn.Name()]:
			ff.Sources = append(ff.Sources, Site{
				Pos: pos, Kind: SrcGlobalRand, Detail: path + "." + fn.Name(),
				Ignored: c.ignoredAt(pos, "clockrand", "detflow"),
			})
		}
		return true
	})
}

func (c *collector) collectMapRange(ff *FuncFacts, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) == 0 {
			return true
		}
		lhs := assign.Lhs[0]
		pos := c.position(assign.Pos())
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if isFloat(c.pass.Info.Types[lhs].Type) && !declaredWithin(c.pass, lhs, rng.Body) {
				ff.Sources = append(ff.Sources, Site{
					Pos: pos, Kind: SrcMapFloat,
					Ignored: c.ignoredAt(pos, "detrange", "detflow"),
				})
			}
		case token.ASSIGN, token.DEFINE:
			if len(assign.Rhs) != 1 || !isAppendCall(c.pass, assign.Rhs[0]) {
				return true
			}
			obj := rootObject(c.pass, lhs)
			if obj == nil || declPosWithin(obj, rng.Body) {
				return true
			}
			if sortedAfter(c.pass, fnBody, rng, obj) {
				return true
			}
			ff.Sources = append(ff.Sources, Site{
				Pos: pos, Kind: SrcMapAppend, Detail: obj.Name(),
				Ignored: c.ignoredAt(pos, "detrange", "detflow"),
			})
		}
		return true
	})
}

// hasSortCall reports a call into package sort or slices anywhere in body.
func hasSortCall(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, ok := pass.Info.Uses[pkgIdent].(*types.PkgName); ok {
			if path := pkgName.Imported().Path(); path == "sort" || path == "slices" {
				found = true
			}
		}
		return true
	})
	return found
}

// collectSinks records the determinism-critical constructions: core Result
// and ShardResult composite literals, and encoding/json marshalling.
func (c *collector) collectSinks(ff *FuncFacts, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			t := c.pass.Info.Types[e].Type
			if t == nil {
				return true
			}
			if name, ok := coreResultType(t); ok {
				kind := SinkResult
				if name == "ShardResult" {
					kind = SinkShardResult
				}
				pos := c.position(e.Pos())
				ff.Sinks = append(ff.Sinks, Site{
					Pos: pos, Kind: kind, Detail: "core." + name,
					Ignored: c.ignoredAt(pos, "detflow"),
				})
			}
		case *ast.CallExpr:
			if detail, ok := jsonMarshalCall(c.pass, e); ok {
				pos := c.position(e.Pos())
				ff.Sinks = append(ff.Sinks, Site{
					Pos: pos, Kind: SinkMarshal, Detail: detail,
					Ignored: c.ignoredAt(pos, "detflow"),
				})
			}
		}
		return true
	})
	sortSites(ff.Sinks)
}

// coreResultType reports whether t is the Result or ShardResult struct of a
// core package (matched by import-path tail, like the obs Registry match).
func coreResultType(t types.Type) (string, bool) {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || (obj.Name() != "Result" && obj.Name() != "ShardResult") {
		return "", false
	}
	path := obj.Pkg().Path()
	if path == "core" || strings.HasSuffix(path, "/core") {
		return obj.Name(), true
	}
	return "", false
}

// jsonMarshalCall matches json.Marshal / json.MarshalIndent and
// (*json.Encoder).Encode.
func jsonMarshalCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		fn, ok := s.Obj().(*types.Func)
		if !ok || fn.Name() != "Encode" || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
			return "", false
		}
		return "(*json.Encoder).Encode", true
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
		return "", false
	}
	if fn.Name() == "Marshal" || fn.Name() == "MarshalIndent" {
		return "json." + fn.Name(), true
	}
	return "", false
}

// ctxParam finds a named context.Context parameter.
func ctxParam(sig *types.Signature) (bool, string) {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if p.Name() == "" || p.Name() == "_" {
			continue
		}
		if isContextType(p.Type()) {
			return true, p.Name()
		}
	}
	return false, ""
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxLoopNodeThreshold is the body size (in AST nodes) past which a loop in
// a context-taking function must mention the context — either polling
// ctx.Err/ctx.Done or passing ctx onward. Small bookkeeping loops stay
// exempt; anything the size of a scan loop must stay cancellable.
const ctxLoopNodeThreshold = 60

// collectCtx gathers the ctxflow facts: Background/TODO handed to a
// context parameter while the function's own context is in scope, and
// oversized loops that never mention the context.
func (c *collector) collectCtx(ff *FuncFacts, fd *ast.FuncDecl) {
	if !ff.TakesCtx {
		return
	}
	ctxObj := c.ctxParamObj(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig, ok := calleeSignature(c.pass, call)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			name, ok := backgroundOrTODO(c.pass, arg)
			if !ok {
				continue
			}
			pt, ok := paramTypeAt(sig, i)
			if !ok || !isContextType(pt) {
				continue
			}
			pos := c.position(arg.Pos())
			ff.CtxBadCalls = append(ff.CtxBadCalls, Site{
				Pos: pos, Kind: "ctxliteral",
				Detail:  name + "() to " + types.ExprString(call.Fun),
				Ignored: c.ignoredAt(pos, "ctxflow"),
			})
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch s := n.(type) {
		case *ast.ForStmt:
			body = s.Body
		case *ast.RangeStmt:
			body = s.Body
		default:
			return true
		}
		nodes := countNodes(body)
		if nodes < ctxLoopNodeThreshold || nodeMentionsObject(c.pass, body, ctxObj) {
			return true
		}
		pos := c.position(n.Pos())
		if c.ignoredAt(pos, "ctxflow") {
			return true
		}
		ff.CtxLoops = append(ff.CtxLoops, LoopSite{Pos: pos, Nodes: nodes})
		return true
	})
}

// nodeMentionsObject reports whether any identifier in the subtree uses
// obj (mentionsObject generalized from ast.Expr to any node).
func nodeMentionsObject(pass *Pass, n ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && pass.Info.Uses[ident] == obj {
			found = true
		}
		return !found
	})
	return found
}

func (c *collector) ctxParamObj(fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := c.pass.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// backgroundOrTODO matches a literal context.Background() / context.TODO()
// call expression.
func backgroundOrTODO(pass *Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return "context." + fn.Name(), true
	}
	return "", false
}

func countNodes(n ast.Node) int {
	count := 0
	ast.Inspect(n, func(n ast.Node) bool {
		if n != nil {
			count++
		}
		return true
	})
	return count
}

// collectDecoders records json.NewDecoder constructions and whether the
// decoder variable is hardened with DisallowUnknownFields.
func (c *collector) collectDecoders(ff *FuncFacts, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Name() != "NewDecoder" || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
			return true
		}
		ff.Decoders = append(ff.Decoders, DecoderSite{
			Pos:      c.position(call.Pos()),
			Disallow: decoderDisallowed(c.pass, body, call),
		})
		return true
	})
	if bodyCallsValidator(c.pass, body) {
		ff.Validates = true
	}
}

// decoderDisallowed reports whether the variable the NewDecoder call is
// assigned to receives a DisallowUnknownFields call in the same function.
func decoderDisallowed(pass *Pass, body *ast.BlockStmt, newDec *ast.CallExpr) bool {
	var decObj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || decObj != nil {
			return decObj == nil
		}
		for i, rhs := range assign.Rhs {
			if ast.Unparen(rhs) != newDec || i >= len(assign.Lhs) {
				continue
			}
			if ident, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pass.Info.Defs[ident]; obj != nil {
					decObj = obj
				} else if obj := pass.Info.Uses[ident]; obj != nil {
					decObj = obj
				}
			}
		}
		return decObj == nil
	})
	if decObj == nil {
		return false // chained or discarded decoder: cannot be hardened
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "DisallowUnknownFields" {
			return true
		}
		if ident, ok := sel.X.(*ast.Ident); ok && pass.Info.Uses[ident] == decObj {
			found = true
		}
		return true
	})
	return found
}

// bodyCallsValidator reports a call to something validation-shaped: a
// function or method whose name contains "valid" (Validate, validate,
// ValidateConfig, isValid...).
func bodyCallsValidator(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch f := call.Fun.(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
		}
		if strings.Contains(strings.ToLower(name), "valid") {
			found = true
		}
		return true
	})
	return found
}

// isHandlerSignature matches func(http.ResponseWriter, *http.Request).
func isHandlerSignature(sig *types.Signature) bool {
	params := sig.Params()
	if params.Len() != 2 {
		return false
	}
	return isNetHTTPType(params.At(0).Type(), "ResponseWriter") &&
		isNetHTTPPtr(params.At(1).Type(), "Request")
}

func isNetHTTPType(t types.Type, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func isNetHTTPPtr(t types.Type, name string) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && isNetHTTPType(ptr.Elem(), name)
}

// collectMetrics records literal obs metric-name registrations.
func (c *collector) collectMetrics(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := c.pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal {
			return true
		}
		fn, ok := s.Obj().(*types.Func)
		if !ok || !metricMethods[fn.Name()] || !isRegistryType(s.Recv()) {
			return true
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := unquote(lit.Value)
		if err != nil {
			return true
		}
		c.pf.Metrics = append(c.pf.Metrics, MetricSite{
			Pos:    c.position(lit.Pos()),
			Name:   name,
			Method: fn.Name(),
		})
		return true
	})
}

var metricMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Add":       true,
}

// isRegistryType reports whether t is obs.Registry or *obs.Registry.
func isRegistryType(t types.Type) bool {
	if isRegistryPtr(t) {
		return true
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Registry" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "obs" || strings.HasSuffix(path, "/obs")
}

func unquote(s string) (string, error) {
	return strconv.Unquote(s)
}

// collectNilRegs gathers the obsdrop sites: literal nil handed to a
// registry parameter by a function that itself receives a registry.
func (c *collector) collectNilRegs(ff *FuncFacts, fd *ast.FuncDecl) {
	if !ff.HasRegistryParam {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig, ok := calleeSignature(c.pass, call)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			if !isNilIdent(c.pass, arg) {
				continue
			}
			pt, ok := paramTypeAt(sig, i)
			if ok && isRegistryPtr(pt) {
				ff.NilRegs = append(ff.NilRegs, NilRegSite{
					Pos:    c.position(arg.Pos()),
					Func:   fd.Name.Name,
					Callee: types.ExprString(call.Fun),
				})
			}
		}
		return true
	})
}

// collectImpls resolves declared-interface fan-out: for every named
// non-interface type declared in this package, and every named interface
// visible from it (its own scope and its direct imports' scopes), record
// which concrete method implements each interface method. This is the only
// dynamic dispatch the call graph resolves; function values and reflection
// stay out of reach (a documented soundness limit).
func (c *collector) collectImpls() {
	ifaces := visibleInterfaces(c.pass.Pkg)
	scope := c.pass.Pkg.Scope()
	for _, tname := range scope.Names() {
		obj, ok := scope.Lookup(tname).(*types.TypeName)
		if !ok || obj.IsAlias() {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		for _, in := range ifaces {
			iface := in.Underlying().(*types.Interface)
			if iface.NumMethods() == 0 {
				continue
			}
			impl := types.Type(named)
			if !types.Implements(impl, iface) {
				impl = types.NewPointer(named)
				if !types.Implements(impl, iface) {
					continue
				}
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
				if fn, ok := obj.(*types.Func); ok {
					key := ifaceMethodID(in, m.Name())
					c.pf.Impls[key] = append(c.pf.Impls[key], FuncID(fn))
				}
			}
		}
	}
}

// visibleInterfaces lists the named interfaces declared in pkg and its
// direct imports.
func visibleInterfaces(pkg *types.Package) []*types.Named {
	var out []*types.Named
	scan := func(p *types.Package) {
		scope := p.Scope()
		for _, name := range scope.Names() {
			obj, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || obj.IsAlias() {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				out = append(out, named)
			}
		}
	}
	scan(pkg)
	for _, imp := range pkg.Imports() {
		scan(imp)
	}
	return out
}

func sortSites(sites []Site) {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
}

// nilGuardResult pairs the plain-data site with the raw position the
// collector resolves.
type nilGuardResult struct {
	NilGuardSite
	rawPos token.Pos
}

// collectNilGuard reports an exported pointer-receiver method that touches
// receiver fields without a leading nil guard (the nilsafe condition,
// detached from any package scoping — the analyzer decides which types the
// contract covers).
func collectNilGuard(pass *Pass, fd *ast.FuncDecl) (nilGuardResult, bool) {
	if fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
		return nilGuardResult{}, false
	}
	recv, typeName := pointerReceiver(pass, fd)
	if typeName == "" || recv == nil {
		return nilGuardResult{}, false
	}
	if !receiverFieldAccess(pass, fd.Body, recv) {
		return nilGuardResult{}, false
	}
	if beginsWithNilGuard(pass, fd.Body, recv) {
		return nilGuardResult{}, false
	}
	return nilGuardResult{
		NilGuardSite: NilGuardSite{TypeName: typeName, Method: fd.Name.Name},
		rawPos:       fd.Name.Pos(),
	}, true
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRange guards the selection pipeline's determinism invariant: parallel
// and serial runs — and any two runs at all — must produce byte-identical
// Results, so map iteration order must never reach persistent state. In
// internal/{core,interleave,flow,campaign} a range over a map is flagged
// when its body
//
//   - appends to a slice declared outside the loop, unless the slice is
//     passed to a sort.* / slices.* call later in the same function (the
//     collect-then-sort idiom), or
//   - accumulates into a floating-point location that outlives the loop
//     (float addition is not associative, so the summation order — the map
//     order — changes the result's bits; sorting afterwards cannot undo
//     that).
//
// Accumulation hidden behind method calls (e.g. an accumulator object) is
// beyond this analyzer's reach; keep such loops over sorted keys.
var DetRange = &Analyzer{
	Name:  "detrange",
	Doc:   "map iteration order must not reach slices, returns, or float accumulation in the selection pipeline",
	Scope: []string{"core", "interleave", "flow", "campaign"},
	Run:   runDetRange,
}

func runDetRange(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncRanges(pass, fd.Body)
		}
	}
}

// checkFuncRanges inspects every map-range inside one function body; the
// body is also the horizon for the later-sort absolution scan.
func checkFuncRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.Info.Types[rng.X].Type; t == nil || !isMap(t) {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRange(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) == 0 {
			return true
		}
		lhs := assign.Lhs[0]
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if isFloat(pass.Info.Types[lhs].Type) && !declaredWithin(pass, lhs, rng.Body) {
				pass.Reportf(assign.Pos(),
					"float accumulation in map-iteration order is not bit-reproducible; iterate sorted keys instead")
			}
		case token.ASSIGN, token.DEFINE:
			if len(assign.Rhs) != 1 || !isAppendCall(pass, assign.Rhs[0]) {
				return true
			}
			obj := rootObject(pass, lhs)
			if obj == nil || declPosWithin(obj, rng.Body) {
				return true
			}
			if sortedAfter(pass, fnBody, rng, obj) {
				return true
			}
			pass.Reportf(assign.Pos(),
				"append to %s in map-iteration order without a later sort; selection results must be order-independent (parallel ≡ serial invariant)",
				obj.Name())
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isAppendCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObject resolves the variable at the root of an lvalue: x, x.f, x[i],
// and chains thereof all resolve to x's object.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[v]; obj != nil {
				return obj
			}
			return pass.Info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the lvalue's root variable is declared
// inside the block — per-iteration state, which map order cannot leak
// through.
func declaredWithin(pass *Pass, lhs ast.Expr, block *ast.BlockStmt) bool {
	obj := rootObject(pass, lhs)
	return obj != nil && declPosWithin(obj, block)
}

func declPosWithin(obj types.Object, block *ast.BlockStmt) bool {
	return obj.Pos() >= block.Pos() && obj.Pos() < block.End()
}

// sortedAfter reports whether, after the range statement, the enclosing
// function calls into package sort or slices with the collected variable —
// the collect-then-sort idiom that restores determinism.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pkgName.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && pass.Info.Uses[ident] == obj {
			found = true
		}
		return !found
	})
	return found
}

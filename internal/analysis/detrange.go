package analysis

import (
	"go/ast"
	"go/types"
)

// DetRange guards the selection pipeline's determinism invariant: parallel
// and serial runs — and any two runs at all — must produce byte-identical
// Results, so map iteration order must never reach persistent state. In
// internal/{core,interleave,flow,campaign} a range over a map is flagged
// when its body
//
//   - appends to a slice declared outside the loop, unless the slice is
//     passed to a sort.* / slices.* call later in the same function (the
//     collect-then-sort idiom), or
//   - accumulates into a floating-point location that outlives the loop
//     (float addition is not associative, so the summation order — the map
//     order — changes the result's bits; sorting afterwards cannot undo
//     that).
//
// Accumulation hidden behind method calls (e.g. an accumulator object) is
// beyond this analyzer's reach; keep such loops over sorted keys.
var DetRange = &Analyzer{
	Name:     "detrange",
	Doc:      "map iteration order must not reach slices, returns, or float accumulation in the selection pipeline",
	Scope:    []string{"core", "interleave", "flow", "campaign"},
	FactsRun: runDetRange,
}

// runDetRange reports the map-order source sites the collector recorded
// (the AST walking lives in collectMapRange; this analyzer is the per-
// package reporting of those facts, detflow is their interprocedural use).
func runDetRange(pass *Pass, pf *PkgFacts) {
	for _, ff := range pf.Funcs {
		for _, s := range ff.Sources {
			switch s.Kind {
			case SrcMapFloat:
				pass.ReportPosf(s.Pos,
					"float accumulation in map-iteration order is not bit-reproducible; iterate sorted keys instead")
			case SrcMapAppend:
				pass.ReportPosf(s.Pos,
					"append to %s in map-iteration order without a later sort; selection results must be order-independent (parallel ≡ serial invariant)",
					s.Detail)
			}
		}
	}
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isAppendCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootObject resolves the variable at the root of an lvalue: x, x.f, x[i],
// and chains thereof all resolve to x's object.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[v]; obj != nil {
				return obj
			}
			return pass.Info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the lvalue's root variable is declared
// inside the block — per-iteration state, which map order cannot leak
// through.
func declaredWithin(pass *Pass, lhs ast.Expr, block *ast.BlockStmt) bool {
	obj := rootObject(pass, lhs)
	return obj != nil && declPosWithin(obj, block)
}

func declPosWithin(obj types.Object, block *ast.BlockStmt) bool {
	return obj.Pos() >= block.Pos() && obj.Pos() < block.End()
}

// sortedAfter reports whether, after the range statement, the enclosing
// function calls into package sort or slices with the collected variable —
// the collect-then-sort idiom that restores determinism.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pkgName.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && pass.Info.Uses[ident] == obj {
			found = true
		}
		return !found
	})
	return found
}

package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the backtick-quoted expectation regexes from a
// "// want `...` `...`" comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// expectation is one "// want" regex anchored to a file line, or an extra
// expectation the test table injects for diagnostics that cannot carry a
// trailing comment (a malformed //lint:ignore is itself a comment).
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants scans the pass's comments for // want expectations.
func collectWants(t *testing.T, pass *Pass) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: want comment without a backtick-quoted regex", pos.Filename, pos.Line)
				}
				for _, m := range ms {
					wants = append(wants, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   regexp.MustCompile(m[1]),
					})
				}
			}
		}
	}
	return wants
}

// TestGoldenPackages is the analysistest-style harness: each testdata/src
// package is typechecked, run through the full analyzer suite, and its
// diagnostics matched one-for-one against the // want comments. Unmatched
// diagnostics and unsatisfied wants are both failures, so the goldens pin
// false positives as tightly as false negatives.
func TestGoldenPackages(t *testing.T) {
	cases := []struct {
		dir string
		// importPath controls analyzer scoping: segments are matched
		// against each analyzer's Scope list.
		importPath string
		// extra maps a line of the (single-file) package to a regex for a
		// diagnostic that cannot carry its own trailing want comment.
		extra map[int]string
	}{
		{dir: "obs", importPath: "obs"},
		{dir: "core", importPath: "core", extra: map[int]string{
			83: `malformed suppression`, // the reasonless //lint:ignore in BadSuppression
		}},
		{dir: "soc", importPath: "soc"},
		{dir: "obsdrop", importPath: "obsdrop"},
		{dir: "campaign", importPath: "campaign"},
		// The interprocedural goldens pick import paths that isolate one
		// analyzer: "x/serve" is outside detrange/clockrand scope, "x/flow"
		// outside detflow's, "x/metrics" outside everything scoped.
		{dir: "detflow", importPath: "x/serve"},
		{dir: "ctxflow", importPath: "x/flow"},
		{dir: "trustbound", importPath: "x/serve"},
		{dir: "obsname", importPath: "x/metrics"},
		// clean is checked under a path that puts every scoped analyzer in
		// scope; it must produce zero findings.
		{dir: "clean", importPath: "core/obs/clean"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			c := NewChecker()
			pass, err := c.CheckDir(filepath.Join("testdata", "src", tc.dir), tc.importPath)
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, pass)
			for line, re := range tc.extra {
				wants = append(wants, &expectation{line: line, re: regexp.MustCompile(re)})
			}
			diags := Analyze(pass, All())
			for _, d := range diags {
				if !matchWant(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// matchWant consumes the first unsatisfied expectation covering the
// diagnostic. Expectations without a file (the injected extras) match on
// line alone.
func matchWant(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if w.hit || w.line != line || (w.file != "" && w.file != file) {
			continue
		}
		if w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

// TestGoldenTripCounts double-checks that each analyzer actually fires on
// its golden package — a harness bug that matched zero wants against zero
// diagnostics would otherwise pass silently.
func TestGoldenTripCounts(t *testing.T) {
	cases := []struct {
		dir, importPath, analyzer string
		min                       int
	}{
		{"obs", "obs", "nilsafe", 3},
		{"core", "core", "detrange", 5},
		{"core", "core", "clockrand", 2},
		{"soc", "soc", "clockrand", 4},
		{"obsdrop", "obsdrop", "obsdrop", 2},
		{"campaign", "campaign", "clockrand", 2},
		{"campaign", "campaign", "detrange", 2},
		{"detflow", "x/serve", "detflow", 2},
		{"ctxflow", "x/flow", "ctxflow", 3},
		{"trustbound", "x/serve", "trustbound", 2},
		{"obsname", "x/metrics", "obsname", 5},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			c := NewChecker()
			pass, err := c.CheckDir(filepath.Join("testdata", "src", tc.dir), tc.importPath)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for _, d := range Analyze(pass, All()) {
				if d.Analyzer == tc.analyzer {
					n++
				}
			}
			if n < tc.min {
				t.Errorf("%s tripped %d times on testdata/src/%s, want >= %d", tc.analyzer, n, tc.dir, tc.min)
			}
		})
	}
}

// TestScopeFiltering pins the segment-matching semantics of Analyzer.Scope.
func TestScopeFiltering(t *testing.T) {
	a := &Analyzer{Name: "x", Scope: []string{"obs"}}
	for path, want := range map[string]bool{
		"tracescale/internal/obs":     true,
		"obs":                         true,
		"a/obs/b":                     true,
		"tracescale/internal/observe": false,
		"cobs":                        false,
		"":                            false,
	} {
		if got := a.inScope(path); got != want {
			t.Errorf("inScope(%q) = %v, want %v", path, got, want)
		}
	}
	if all := (&Analyzer{Name: "y"}); !all.inScope("anything/at/all") {
		t.Error("empty scope must match every package")
	}
}

// TestSuppressions drives Analyze with a synthetic analyzer so the
// suppression machinery is exercised in isolation: same-line, line-above,
// wrong-analyzer, too-far, and malformed directives.
func TestSuppressions(t *testing.T) {
	dir := t.TempDir()
	// Line 3 is suppressed same-line, line 6 from the line above, line 9
	// names a different analyzer (survives), line 13 sits two lines below
	// its directive (survives).
	src := `package sup

func A() {} //lint:ignore synth reviewed

//lint:ignore synth reviewed
func B() {}

//lint:ignore other reviewed
func C() {}

//lint:ignore synth reviewed

func D() {}
`
	writeFile(t, filepath.Join(dir, "sup.go"), src)
	synth := &Analyzer{
		Name: "synth",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					pass.Reportf(d.Pos(), "decl finding")
				}
			}
		},
	}
	pass, err := NewChecker().CheckDir(dir, "sup")
	if err != nil {
		t.Fatal(err)
	}
	diags := Analyze(pass, []*Analyzer{synth})
	var lines []int
	for _, d := range diags {
		if d.Analyzer != "synth" {
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
			continue
		}
		lines = append(lines, d.Pos.Line)
	}
	if want := []int{9, 13}; fmt.Sprint(lines) != fmt.Sprint(want) {
		t.Errorf("surviving finding lines = %v, want %v", lines, want)
	}
}

// TestMalformedSuppression checks that a reasonless directive is reported
// as a tracelint diagnostic and does not silence anything.
func TestMalformedSuppression(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "m.go"), `package m

//lint:ignore synth
func A() {}
`)
	synth := &Analyzer{
		Name: "synth",
		Run: func(pass *Pass) {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					pass.Reportf(d.Pos(), "decl finding")
				}
			}
		},
	}
	pass, err := NewChecker().CheckDir(dir, "m")
	if err != nil {
		t.Fatal(err)
	}
	diags := Analyze(pass, []*Analyzer{synth})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (finding + malformed directive): %v", len(diags), diags)
	}
	if diags[0].Analyzer != "tracelint" || !strings.Contains(diags[0].Message, "malformed suppression") {
		t.Errorf("first diagnostic = %s, want tracelint malformed-suppression", diags[0])
	}
	if diags[1].Analyzer != "synth" {
		t.Errorf("second diagnostic = %s, want the unsuppressed synth finding", diags[1])
	}
}

package analysis

// CtxFlow is the static twin of the chunked-poll discipline the serving
// stack established: a function that accepts a context.Context must thread
// it. Two shapes are findings in the cancellation-critical packages:
//
//   - a literal context.Background() or context.TODO() handed to a callee's
//     ctx parameter while the function's own context is in scope — the
//     callee silently detaches from the caller's deadline and cancellation,
//     which is how a cancelled selection keeps a shard pool burning;
//   - a for/range loop whose body exceeds ctxLoopNodeThreshold AST nodes
//     without mentioning the context at all — a scan loop that can neither
//     be cancelled nor time out. Small bookkeeping loops stay exempt.
//
// Deliberate detachment (a singleflight computation that must outlive any
// one waiter, a drain that must outlive the cancelled serve context) is
// annotated //lint:ignore ctxflow <reason> — the reason is the review
// record that the detachment is on purpose.
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "context-taking functions must thread ctx to ctx-accepting callees and poll it in long loops",
	Scope:     []string{"core", "interleave", "flow", "pipeline", "serve", "campaign", "traceserved"},
	GlobalRun: runCtxFlow,
}

func runCtxFlow(gp *GlobalPass) {
	u := gp.Unit
	for _, id := range u.FuncIDs() {
		ff := u.Funcs[id]
		if !gp.InScope(ff.PkgPath) {
			continue
		}
		for _, site := range ff.CtxBadCalls {
			if site.Ignored {
				continue
			}
			gp.Report(site.Pos,
				"%s takes %s but passes %s; thread the caller's context so cancellation and deadlines propagate (annotate deliberate detachment with //lint:ignore ctxflow <reason>)",
				ff.Short, ff.CtxName, site.Detail)
		}
		for _, loop := range ff.CtxLoops {
			gp.Report(loop.Pos,
				"loop body (%d nodes) in %s never consults %s; poll ctx (ctx.Err/ctx.Done) or pass it down so long scans stay cancellable",
				loop.Nodes, ff.Short, ff.CtxName)
		}
	}
}

package analysis

import (
	"path/filepath"
	"testing"
)

// BenchmarkImporter measures what the process-wide shared import cache
// saves: checking a package whose imports reach into the module
// (testdata/src/obsdrop imports tracescale/internal/obs) with a fresh
// importer per Checker re-typechecks the dependency chain from source
// every time, while the shared cache pays it once for the process. The
// shared case is what every NewChecker caller — the engine workers and
// the golden-test harness alike — gets.
func BenchmarkImporter(b *testing.B) {
	dir := filepath.Join("testdata", "src", "obsdrop")
	b.Run("isolated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := newIsolatedChecker()
			if _, err := c.CheckDir(dir, "obsdrop"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewChecker()
			if _, err := c.CheckDir(dir, "obsdrop"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

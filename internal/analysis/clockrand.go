package analysis

import "strings"

// ClockRand guards run reproducibility: the simulator, the selection
// pipeline, and the information-gain computation must be pure functions of
// their inputs and seeds, so the fuzz corpus and the paper's goldens replay
// bit-identically. In internal/{core,interleave,flow,soc,info,campaign} it
// forbids
//
//   - reading the wall clock: time.Now, time.Since, time.Until (trace
//     events carry sequence numbers, not timestamps; the only sanctioned
//     wall-clock use is registry-gated metrics timing, annotated
//     //lint:ignore clockrand), and
//   - the global math/rand source (rand.Intn, rand.Shuffle, ...): its
//     state is process-wide and unseedable per run. Constructing injected
//     generators (rand.New, rand.NewSource, rand.NewZipf) is allowed, as
//     are methods on an injected *rand.Rand.
var ClockRand = &Analyzer{
	Name:     "clockrand",
	Doc:      "no wall clock or global math/rand in the deterministic packages; inject seeds and clocks",
	Scope:    []string{"core", "interleave", "flow", "soc", "info", "campaign"},
	FactsRun: runClockRand,
}

// randConstructors are the math/rand package-level functions that build
// injected generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// clockFuncs are the time functions that read the wall clock.
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// runClockRand reports every clock/global-rand source site the collector
// recorded, including suppressed ones — the engine's suppression filter is
// the single place //lint:ignore comments take effect, so a site marked
// Ignored for detflow's taint purposes still surfaces here unless a
// clockrand suppression covers it.
func runClockRand(pass *Pass, pf *PkgFacts) {
	for _, ff := range pf.Funcs {
		for _, s := range ff.Sources {
			switch s.Kind {
			case SrcClock:
				pass.ReportPosf(s.Pos,
					"time.%s reads the wall clock; runs must be reproducible — inject a clock, or annotate registry-gated metrics timing with //lint:ignore clockrand <reason>",
					strings.TrimPrefix(s.Detail, "time."))
			case SrcGlobalRand:
				dot := strings.LastIndex(s.Detail, ".")
				pass.ReportPosf(s.Pos,
					"%s.%s draws from the process-global source; inject a seeded *rand.Rand instead",
					s.Detail[:dot], s.Detail[dot+1:])
			}
		}
	}
}

func isMathRand(path string) bool {
	return path == "math/rand" || strings.HasPrefix(path, "math/rand/")
}

package analysis

import (
	"go/types"
	"strings"
)

// ClockRand guards run reproducibility: the simulator, the selection
// pipeline, and the information-gain computation must be pure functions of
// their inputs and seeds, so the fuzz corpus and the paper's goldens replay
// bit-identically. In internal/{core,interleave,flow,soc,info,campaign} it
// forbids
//
//   - reading the wall clock: time.Now, time.Since, time.Until (trace
//     events carry sequence numbers, not timestamps; the only sanctioned
//     wall-clock use is registry-gated metrics timing, annotated
//     //lint:ignore clockrand), and
//   - the global math/rand source (rand.Intn, rand.Shuffle, ...): its
//     state is process-wide and unseedable per run. Constructing injected
//     generators (rand.New, rand.NewSource, rand.NewZipf) is allowed, as
//     are methods on an injected *rand.Rand.
var ClockRand = &Analyzer{
	Name:  "clockrand",
	Doc:   "no wall clock or global math/rand in the deterministic packages; inject seeds and clocks",
	Scope: []string{"core", "interleave", "flow", "soc", "info", "campaign"},
	Run:   runClockRand,
}

// randConstructors are the math/rand package-level functions that build
// injected generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// clockFuncs are the time functions that read the wall clock.
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runClockRand(pass *Pass) {
	for ident, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			continue // methods (e.g. on an injected *rand.Rand) are fine
		}
		switch path := fn.Pkg().Path(); {
		case path == "time" && clockFuncs[fn.Name()]:
			pass.Reportf(ident.Pos(),
				"time.%s reads the wall clock; runs must be reproducible — inject a clock, or annotate registry-gated metrics timing with //lint:ignore clockrand <reason>",
				fn.Name())
		case isMathRand(path) && !randConstructors[fn.Name()]:
			pass.Reportf(ident.Pos(),
				"%s.%s draws from the process-global source; inject a seeded *rand.Rand instead",
				path, fn.Name())
		}
	}
}

func isMathRand(path string) bool {
	return path == "math/rand" || strings.HasPrefix(path, "math/rand/")
}

package analysis

import (
	"runtime"
	"sync"
)

// This file is the parallel driver of the facts engine: list the package
// graph, typecheck and collect facts with a worker pool, then run phase 2
// once over the merged facts. Output is byte-stable across worker counts:
// passes land in go-list order regardless of which worker finished first,
// phase 2 is single-threaded over sorted merged facts, and the final
// diagnostics sort is global.

// RunParallel is Run with a worker pool: workers packages are typechecked
// and fact-collected concurrently (workers < 1 means GOMAXPROCS). The
// diagnostics are identical to a single-worker run — the differential test
// pins -workers 1 ≡ -workers 4 byte for byte.
func RunParallel(dir string, patterns []string, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	pkgs, err := GoList(dir, patterns)
	if err != nil {
		return nil, err
	}
	var active []*Package
	for _, pkg := range pkgs {
		if pkg.Error == nil && len(pkg.GoFiles) == 0 {
			continue // pure-test or empty package: nothing to analyze
		}
		active = append(active, pkg)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(active) {
		workers = len(active)
	}
	if workers < 1 {
		workers = 1
	}
	passes := make([]*Pass, len(active))
	facts := make([]*PkgFacts, len(active))
	errs := make([]error, len(active))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewChecker()
			for i := range idx {
				pass, err := c.Check(active[i])
				if err != nil {
					errs[i] = err
					continue
				}
				passes[i] = pass
				facts[i] = CollectFacts(pass)
			}
		}()
	}
	for i := range active {
		idx <- i
	}
	close(idx)
	wg.Wait()
	// First error in go-list order, independent of worker scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return AnalyzeGraph(passes, facts, analyzers), nil
}

package analysis

import "path/filepath"

// DetFlow is detrange generalized across call boundaries: the
// interprocedural determinism-taint analyzer. A function is *tainted* when
// it — or any transitive callee, through the merged call graph — hits a
// nondeterminism source (map-range order escaping the loop, a wall-clock
// read, a global math/rand draw) with no canonicalizing frame (a call into
// package sort or slices) in between. A tainted function in
// core/interleave/serve/pipeline that constructs a core.Result or
// core.ShardResult, or marshals through encoding/json, is a finding: the
// bytes it emits depend on an ordering no replay can reproduce, which is
// exactly the distributed ≡ local ≡ serial invariant the differential
// tests pin after the fact.
//
// Source sites carrying a //lint:ignore for their native analyzer
// (clockrand, detrange) or for detflow itself do not generate taint — a
// reviewed metrics-timing clock read is sanctioned precisely because its
// value never reaches a Result. Suppressing the sink site with
// //lint:ignore detflow works too, for marshalling that is genuinely
// order-independent.
var DetFlow = &Analyzer{
	Name:      "detflow",
	Doc:       "nondeterminism sources must not reach Result/ShardResult construction or JSON marshalling without an intervening sort",
	Scope:     []string{"core", "interleave", "serve", "pipeline"},
	GlobalRun: runDetFlow,
}

func runDetFlow(gp *GlobalPass) {
	u := gp.Unit
	leaks, via := u.TaintLeaks()
	for _, id := range u.FuncIDs() {
		ff := u.Funcs[id]
		if !leaks[id] || !gp.InScope(ff.PkgPath) {
			continue
		}
		path, src := u.TaintWitness(id, via)
		for _, sink := range ff.Sinks {
			if sink.Ignored {
				continue
			}
			gp.Report(sink.Pos,
				"%s is built while tainted by %s at %s:%d%s; sort/canonicalize before constructing results or marshalling (parallel ≡ serial invariant)",
				sink.Detail, describeSource(src), filepath.Base(src.Pos.Filename), src.Pos.Line, renderChain(path))
		}
	}
}

// describeSource names a source site's nondeterminism class for messages.
func describeSource(s Site) string {
	switch s.Kind {
	case SrcMapAppend:
		return "map-iteration-order append to " + s.Detail
	case SrcMapFloat:
		return "map-iteration-order float accumulation"
	case SrcClock:
		return "a wall-clock read (" + s.Detail + ")"
	case SrcGlobalRand:
		return "a global draw (" + s.Detail + ")"
	}
	return "a nondeterminism source"
}

// renderChain renders the witness call path when the taint is transitive;
// a self-sourced frame (path length 1) needs no chain.
func renderChain(path []string) string {
	if len(path) <= 1 {
		return ""
	}
	out := " via "
	for i, p := range path {
		if i > 0 {
			out += " -> "
		}
		out += p
	}
	return out
}

package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// repoRoot is the module root relative to this package's directory.
const repoRoot = "../.."

// TestParseGoList decodes a literal `go list -json` stream: concatenated
// JSON objects, not an array.
func TestParseGoList(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []*Package
		err   string
	}{
		{
			name:  "empty",
			input: "",
			want:  nil,
		},
		{
			name: "two packages",
			input: `{"Dir": "/m/a", "ImportPath": "m/a", "Name": "a", "GoFiles": ["a.go", "b.go"]}
{"Dir": "/m/b", "ImportPath": "m/b", "Name": "b", "GoFiles": ["b.go"]}`,
			want: []*Package{
				{Dir: "/m/a", ImportPath: "m/a", Name: "a", GoFiles: []string{"a.go", "b.go"}},
				{Dir: "/m/b", ImportPath: "m/b", Name: "b", GoFiles: []string{"b.go"}},
			},
		},
		{
			name:  "load error carried through",
			input: `{"ImportPath": "m/bad", "Error": {"Err": "no Go files in /m/bad"}}`,
			want:  []*Package{{ImportPath: "m/bad", Error: &PackageError{Err: "no Go files in /m/bad"}}},
		},
		{
			name:  "garbage",
			input: `{"Dir": `,
			err:   "parsing go list output",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseGoList(strings.NewReader(tc.input))
			if tc.err != "" {
				if err == nil || !strings.Contains(err.Error(), tc.err) {
					t.Fatalf("err = %v, want containing %q", err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d packages, want %d", len(got), len(tc.want))
			}
			for i, p := range got {
				w := tc.want[i]
				if p.Dir != w.Dir || p.ImportPath != w.ImportPath || p.Name != w.Name {
					t.Errorf("package %d = %+v, want %+v", i, p, w)
				}
				if strings.Join(p.GoFiles, ",") != strings.Join(w.GoFiles, ",") {
					t.Errorf("package %d GoFiles = %v, want %v", i, p.GoFiles, w.GoFiles)
				}
				if (p.Error == nil) != (w.Error == nil) {
					t.Errorf("package %d Error = %v, want %v", i, p.Error, w.Error)
				} else if p.Error != nil && p.Error.Err != w.Error.Err {
					t.Errorf("package %d Error.Err = %q, want %q", i, p.Error.Err, w.Error.Err)
				}
			}
		})
	}
}

// TestGoListRepo lists a real package of this module through the go command.
func TestGoListRepo(t *testing.T) {
	pkgs, err := GoList(repoRoot, []string{"./internal/obs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "tracescale/internal/obs" || p.Name != "obs" {
		t.Errorf("listed %s (package %s), want tracescale/internal/obs (package obs)", p.ImportPath, p.Name)
	}
	if len(p.GoFiles) == 0 || p.Error != nil {
		t.Errorf("GoFiles = %v, Error = %v", p.GoFiles, p.Error)
	}
}

// TestGoListBadDir surfaces the go command's failure when the working
// directory does not exist.
func TestGoListBadDir(t *testing.T) {
	if _, err := GoList(filepath.Join(t.TempDir(), "missing"), []string{"./..."}); err == nil {
		t.Fatal("expected an error for a nonexistent directory")
	}
}

// TestCheckSurfacesListError converts a go list load error into a checker
// error instead of analyzing an empty package.
func TestCheckSurfacesListError(t *testing.T) {
	pkg := &Package{ImportPath: "m/bad", Error: &PackageError{Err: "no Go files in /m/bad"}}
	_, err := NewChecker().Check(pkg)
	if err == nil || !strings.Contains(err.Error(), "m/bad") || !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("err = %v, want the load error with the import path", err)
	}
}

// TestCheckDirSurfacesTypeError typechecks the deliberately broken golden
// package and expects the type error, not a Pass.
func TestCheckDirSurfacesTypeError(t *testing.T) {
	_, err := NewChecker().CheckDir(filepath.Join("testdata", "src", "broken"), "broken")
	if err == nil || !strings.Contains(err.Error(), "typechecking broken") {
		t.Fatalf("err = %v, want a typechecking error for package broken", err)
	}
}

// TestCheckDirSurfacesParseError reports syntax errors with positions.
func TestCheckDirSurfacesParseError(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "bad.go"), "package bad\nfunc {\n")
	_, err := NewChecker().CheckDir(dir, "bad")
	if err == nil || !strings.Contains(err.Error(), "bad.go") {
		t.Fatalf("err = %v, want a parse error naming bad.go", err)
	}
}

// TestCheckDirEmpty rejects directories with no Go files.
func TestCheckDirEmpty(t *testing.T) {
	if _, err := NewChecker().CheckDir(t.TempDir(), "empty"); err == nil {
		t.Fatal("expected an error for a directory without Go files")
	}
}

// TestCheckDirSkipsTests keeps _test.go files out of the ad-hoc package.
func TestCheckDirSkipsTests(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "a.go"), "package p\n\nfunc A() {}\n")
	writeFile(t, filepath.Join(dir, "a_test.go"), "package p\n\nthis would not even parse\n")
	pass, err := NewChecker().CheckDir(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	if len(pass.Files) != 1 {
		t.Fatalf("got %d files, want 1 (the _test.go must be skipped)", len(pass.Files))
	}
}

// TestRunRepoClean runs the full pipeline over this repository: after the
// determinism fixes the tree must be finding-free, which is exactly the CI
// gate.
func TestRunRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repo from source")
	}
	diags, err := Run(repoRoot, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding on the real tree: %s", d)
	}
}

// TestByName pins subset selection and unknown-name errors.
func TestByName(t *testing.T) {
	got, err := ByName([]string{"obsdrop", "nilsafe"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "obsdrop" || got[1].Name != "nilsafe" {
		t.Errorf("ByName returned %v", got)
	}
	if _, err := ByName([]string{"nope"}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("err = %v, want unknown-analyzer error naming nope", err)
	}
}

// TestWriteJSON pins the machine-readable schema CI archives.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty diagnostics encode as %q, want %q", got, "[]\n")
	}

	buf.Reset()
	diags := []Diagnostic{{
		Pos:      token.Position{Filename: "a/b.go", Line: 7, Column: 3},
		Analyzer: "detrange",
		Message:  "append in map order",
	}}
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded) != 1 {
		t.Fatalf("got %d entries, want 1", len(decoded))
	}
	want := map[string]any{
		"file":     "a/b.go",
		"line":     float64(7),
		"col":      float64(3),
		"analyzer": "detrange",
		"message":  "append in map order",
	}
	if len(decoded[0]) != len(want) {
		t.Errorf("schema has keys %v, want exactly %v", decoded[0], want)
	}
	for k, v := range want {
		if decoded[0][k] != v {
			t.Errorf("field %q = %v, want %v", k, decoded[0][k], v)
		}
	}
}

// TestSummary pins the one-line CI gate text.
func TestSummary(t *testing.T) {
	d := func(a string) Diagnostic { return Diagnostic{Analyzer: a} }
	cases := []struct {
		diags []Diagnostic
		want  string
	}{
		{nil, "no findings"},
		{[]Diagnostic{d("nilsafe")}, "1 finding (nilsafe=1)"},
		{[]Diagnostic{d("detrange"), d("clockrand"), d("detrange")}, "3 findings (clockrand=1, detrange=2)"},
	}
	for _, tc := range cases {
		if got := Summary(tc.diags); got != tc.want {
			t.Errorf("Summary(%d diags) = %q, want %q", len(tc.diags), got, tc.want)
		}
	}
}

// TestDiagnosticString pins the canonical file:line:col rendering.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 2, Column: 5},
		Analyzer: "nilsafe",
		Message:  "m",
	}
	if got, want := d.String(), "x.go:2:5: [nilsafe] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

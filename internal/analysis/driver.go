package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one entry of `go list -json` output — just the fields the
// driver needs to load and typecheck the package from source.
type Package struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Error      *PackageError
}

// PackageError is go list's per-package load error (reported with -e
// instead of aborting the whole listing).
type PackageError struct {
	Err string
}

// GoList enumerates the packages matching the patterns by shelling out to
// `go list -e -json` in dir. It keeps the driver at zero dependencies: the
// go command is the module-aware package loader the toolchain already
// ships.
func GoList(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("analysis: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	return ParseGoList(&stdout)
}

// ParseGoList decodes a stream of `go list -json` package objects.
func ParseGoList(r io.Reader) ([]*Package, error) {
	dec := json.NewDecoder(r)
	var pkgs []*Package
	for dec.More() {
		p := new(Package)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("analysis: parsing go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Checker parses and typechecks packages from source. One Checker shares a
// file set and an import cache across packages, so a whole-repo run
// typechecks each dependency once.
type Checker struct {
	fset *token.FileSet
	imp  types.Importer
}

// sharedImport is the process-wide import cache every NewChecker shares:
// one file set and one source importer for the life of the process. The
// source importer typechecks each dependency from source the first time it
// is asked and memoizes the result, so hoisting one instance across the
// run (and across test cases) pays that cost once instead of once per
// Checker — BenchmarkImporter measures the difference. The importer is not
// safe for concurrent use, so Import calls are serialized by mu; the
// completed *types.Package values it hands back are immutable, so
// concurrent Checkers read them freely (and token.FileSet locks itself).
var sharedImport struct {
	once sync.Once
	mu   sync.Mutex
	fset *token.FileSet
	imp  types.Importer
}

// lockedImporter funnels Import calls into the shared source importer
// under its mutex, making the shared cache safe for parallel Checkers.
type lockedImporter struct{}

func (lockedImporter) Import(path string) (*types.Package, error) {
	sharedImport.mu.Lock()
	defer sharedImport.mu.Unlock()
	return sharedImport.imp.Import(path)
}

// NewChecker returns a Checker whose imports resolve through the stdlib
// source importer (module-aware via the go command; no binary export data
// and no x/tools). All Checkers share one process-wide file set and import
// cache — see sharedImport.
func NewChecker() *Checker {
	sharedImport.once.Do(func() {
		sharedImport.fset = token.NewFileSet()
		sharedImport.imp = importer.ForCompiler(sharedImport.fset, "source", nil)
	})
	return &Checker{fset: sharedImport.fset, imp: lockedImporter{}}
}

// newIsolatedChecker builds a Checker with a private file set and importer
// — no shared cache. It exists so the importer benchmark can measure what
// sharing saves; production paths always use NewChecker.
func newIsolatedChecker() *Checker {
	fset := token.NewFileSet()
	return &Checker{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Check parses the package's GoFiles and typechecks them, returning a Pass
// ready for Analyze. Typecheck and parse errors are surfaced, not
// swallowed: an unanalyzable package fails the run.
func (c *Checker) Check(pkg *Package) (*Pass, error) {
	if pkg.Error != nil {
		return nil, fmt.Errorf("analysis: loading %s: %s", pkg.ImportPath, strings.TrimSpace(pkg.Error.Err))
	}
	var paths []string
	for _, name := range pkg.GoFiles {
		paths = append(paths, filepath.Join(pkg.Dir, name))
	}
	return c.check(pkg.ImportPath, paths)
}

// CheckDir typechecks every non-test .go file in dir as one package under
// the given import path — the ad-hoc loader the testdata harness uses for
// packages the go tool deliberately cannot see (directories under
// testdata/).
func (c *Checker) CheckDir(dir, importPath string) (*Pass, error) {
	list, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, p := range list {
		if strings.HasSuffix(p, "_test.go") {
			continue
		}
		paths = append(paths, p)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return c.check(importPath, paths)
}

func (c *Checker) check(importPath string, paths []string) (*Pass, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(c.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: c.imp}
	pkg, err := conf.Check(importPath, c.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %w", importPath, err)
	}
	return &Pass{
		Fset:       c.fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		ImportPath: importPath,
	}, nil
}

// Run is the whole pipeline: list the patterns in dir, typecheck each
// matched package, collect facts, run the analyzers over the merged
// package graph (one AnalyzeGraph call, so interprocedural analyzers see
// cross-package edges), and return every surviving finding sorted by
// position. Packages without Go files (e.g. pure-test packages) are
// skipped. Run is single-worker; RunParallel fans the typecheck phase out.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunParallel(dir, patterns, analyzers, 1)
}

// jsonDiagnostic is the machine-readable diagnostic schema of
// `tracelint -json` — stable field names, one object per finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON writes the diagnostics as an indented JSON array (an empty
// array — never null — when there are no findings).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}

// Summary renders the per-analyzer finding counts as one line, e.g.
// "3 findings (clockrand=1, detrange=2)" — the text CI prints when the
// gate trips, instead of raw tool output.
func Summary(diags []Diagnostic) string {
	if len(diags) == 0 {
		return "no findings"
	}
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, counts[n])
	}
	noun := "findings"
	if len(diags) == 1 {
		noun = "finding"
	}
	return fmt.Sprintf("%d %s (%s)", len(diags), noun, strings.Join(parts, ", "))
}

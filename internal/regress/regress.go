// Package regress is the regression environment of the evaluation's §4:
// the analog of the fc1_all_T2 testbench suite the paper drives its
// experiments with. Each test exercises two or more IPs through one or
// more protocol flows, runs the transaction-level simulator, and checks
// structural invariants — completion counts, per-flow message
// conservation, and minimum traffic volume — so that injected bugs
// surface as regressions exactly the way they do in a real flow.
package regress

import (
	"fmt"
	"sort"

	"tracescale/internal/obs"
	"tracescale/internal/opensparc"
	"tracescale/internal/soc"
)

// Test is one regression test.
type Test struct {
	Name        string
	Description string
	// FlowCounts maps flow names (opensparc catalog) to the number of
	// indexed instances launched.
	FlowCounts map[string]int
	// Stride is the launch stagger in cycles (default 16).
	Stride uint64
	// IPs are the blocks the test exercises (each test covers >= 2).
	IPs []string
}

// Suite returns the five regression tests, mirroring the paper's "5
// different tests from the fc1_all_T2 regression environment. Each test
// exercises 2 or more IPs and associated flows."
func Suite() []Test {
	return []Test{
		{
			Name:        "pio_rd_basic",
			Description: "back-to-back PIO reads through NCU, DMU, PEU, SIU",
			FlowCounts:  map[string]int{opensparc.FlowPIOR: 12},
			IPs:         []string{opensparc.NCU, opensparc.DMU, opensparc.PEU, opensparc.SIU},
		},
		{
			Name:        "pio_wr_burst",
			Description: "a burst of posted PIO writes with credit returns",
			FlowCounts:  map[string]int{opensparc.FlowPIOW: 32},
			Stride:      4,
			IPs:         []string{opensparc.NCU, opensparc.DMU},
		},
		{
			Name:        "mondo_storm",
			Description: "a storm of Mondo interrupts arbitrating for the SII",
			FlowCounts:  map[string]int{opensparc.FlowMon: 24},
			Stride:      6,
			IPs:         []string{opensparc.DMU, opensparc.SIU, opensparc.NCU},
		},
		{
			Name:        "ncu_updown",
			Description: "concurrent upstream and downstream NCU traffic",
			FlowCounts:  map[string]int{opensparc.FlowNCUU: 12, opensparc.FlowNCUD: 12},
			IPs:         []string{opensparc.NCU, opensparc.CCX, opensparc.MCU},
		},
		{
			Name:        "full_mix",
			Description: "all five protocol flows interleaved",
			FlowCounts: map[string]int{
				opensparc.FlowPIOR: 10, opensparc.FlowPIOW: 10, opensparc.FlowNCUU: 10,
				opensparc.FlowNCUD: 10, opensparc.FlowMon: 10,
			},
			IPs: opensparc.IPs(),
		},
	}
}

// TestByName returns the named regression test.
func TestByName(name string) (Test, error) {
	for _, t := range Suite() {
		if t.Name == name {
			return t, nil
		}
	}
	return Test{}, fmt.Errorf("regress: no test %q", name)
}

// Report is one regression run's outcome.
type Report struct {
	Test       string
	Passed     bool
	Violations []string
	Events     int
	EndCycle   uint64
	Completed  int
	Launched   int
	Symptoms   []soc.Symptom
	// MessageMix counts delivered events per message name.
	MessageMix map[string]int
}

// Run executes one regression test with optional fault injectors. A run
// passes when the simulator reports no symptoms and every structural
// invariant holds.
func Run(t Test, seed int64, injectors ...soc.Injector) (*Report, error) {
	stride := t.Stride
	if stride == 0 {
		stride = 16
	}
	catalog := opensparc.Flows()
	var launches []soc.Launch
	names := make([]string, 0, len(t.FlowCounts))
	for name := range t.FlowCounts {
		names = append(names, name)
	}
	sort.Strings(names)
	for fi, name := range names {
		f := catalog[name]
		if f == nil {
			return nil, fmt.Errorf("regress: test %q references unknown flow %q", t.Name, name)
		}
		launches = append(launches, soc.Repeat(f, t.FlowCounts[name], 1, uint64(fi), stride)...)
	}
	res, err := soc.Run(soc.Scenario{Name: t.Name, Launches: launches}, soc.Config{Seed: seed, Injectors: injectors, Obs: obs.Default})
	if err != nil {
		return nil, fmt.Errorf("regress: test %q: %w", t.Name, err)
	}

	rep := &Report{
		Test:       t.Name,
		Events:     len(res.Events),
		EndCycle:   res.EndCycle,
		Completed:  res.Completed,
		Launched:   len(launches),
		Symptoms:   res.Symptoms,
		MessageMix: make(map[string]int),
	}
	for _, ev := range res.Delivered() {
		rep.MessageMix[ev.Msg.Name]++
	}

	// Invariants.
	if !res.Passed() {
		rep.Violations = append(rep.Violations, fmt.Sprintf("%d symptom(s), first: %s", len(res.Symptoms), res.Symptoms[0]))
	}
	if rep.Completed != rep.Launched {
		rep.Violations = append(rep.Violations, fmt.Sprintf("completed %d of %d instances", rep.Completed, rep.Launched))
	}
	// Message conservation: a completed linear flow instance emits each of
	// its messages exactly once, so per-message counts must equal the
	// summed instance counts of the flows carrying that message.
	want := make(map[string]int)
	for _, name := range names {
		f := catalog[name]
		for _, m := range f.Messages() {
			want[m.Name] += t.FlowCounts[name]
		}
	}
	if res.Passed() {
		for m, w := range want {
			if got := rep.MessageMix[m]; got != w {
				rep.Violations = append(rep.Violations, fmt.Sprintf("message %s delivered %d times, want %d", m, got, w))
			}
		}
	}
	rep.Passed = len(rep.Violations) == 0
	return rep, nil
}

// RunSuite executes every regression test.
func RunSuite(seed int64, injectors ...soc.Injector) ([]*Report, error) {
	var out []*Report
	for _, t := range Suite() {
		rep, err := Run(t, seed, injectors...)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

package regress

import (
	"strings"
	"testing"

	"tracescale/internal/opensparc"
)

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite has %d tests, want 5 (the paper's fc1 subset)", len(suite))
	}
	seen := map[string]bool{}
	for _, tc := range suite {
		if seen[tc.Name] {
			t.Errorf("duplicate test %q", tc.Name)
		}
		seen[tc.Name] = true
		if len(tc.IPs) < 2 {
			t.Errorf("test %q exercises %d IPs, want >= 2", tc.Name, len(tc.IPs))
		}
		if len(tc.FlowCounts) == 0 {
			t.Errorf("test %q has no flows", tc.Name)
		}
	}
	if _, err := TestByName("full_mix"); err != nil {
		t.Error(err)
	}
	if _, err := TestByName("nosuch"); err == nil {
		t.Error("found nonexistent test")
	}
}

func TestSuitePassesOnGoldenDesign(t *testing.T) {
	reports, err := RunSuite(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.Passed {
			t.Errorf("%s failed: %v", r.Test, r.Violations)
		}
		if r.Completed != r.Launched {
			t.Errorf("%s completed %d of %d", r.Test, r.Completed, r.Launched)
		}
		if r.Events == 0 || r.EndCycle == 0 {
			t.Errorf("%s produced no traffic", r.Test)
		}
	}
}

func TestMessageConservation(t *testing.T) {
	rep, err := Run(Suite()[4], 9) // full_mix
	if err != nil {
		t.Fatal(err)
	}
	// siincu is carried by PIOR and Mon: 10 + 10 occurrences.
	if got := rep.MessageMix[opensparc.MsgSIINCU]; got != 20 {
		t.Errorf("siincu delivered %d times, want 20", got)
	}
	if got := rep.MessageMix[opensparc.MsgPIOWCrd]; got != 10 {
		t.Errorf("piowcrd delivered %d times, want 10", got)
	}
}

// Every catalog bug, injected alone, fails at least one regression test —
// the suite has no coverage holes for the bug model.
func TestSuiteCatchesEveryCatalogBug(t *testing.T) {
	for _, bug := range opensparc.Bugs() {
		caught := false
		var reports []*Report
		rs, err := RunSuite(5, bug)
		if err != nil {
			t.Fatal(err)
		}
		reports = rs
		for _, r := range reports {
			if !r.Passed {
				caught = true
			}
		}
		if !caught {
			t.Errorf("bug %d (%s on %s) slipped through the suite", bug.ID, bug.Kind, bug.Target)
		}
	}
}

func TestRunReportsViolationsForInjectedBug(t *testing.T) {
	bug, err := opensparc.BugByID(33) // Mondo never generated
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Suite()[2], 5, bug) // mondo_storm
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("mondo_storm passed with the Mondo-generation bug injected")
	}
	joined := strings.Join(rep.Violations, "; ")
	if !strings.Contains(joined, "symptom") {
		t.Errorf("violations = %q, want symptom report", joined)
	}
	if rep.Completed == rep.Launched {
		t.Error("all instances completed despite dropped reqtot")
	}
}

func TestRunUnknownFlow(t *testing.T) {
	_, err := Run(Test{Name: "bad", FlowCounts: map[string]int{"nosuch": 1}}, 1)
	if err == nil {
		t.Fatal("unknown flow accepted")
	}
}

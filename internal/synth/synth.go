// Package synth generates synthetic flow families for scalability studies
// and property testing: parameterized random flows (chain or DAG shaped),
// usage scenarios over them, and width distributions with packing-friendly
// subgroups. The paper's third contribution is making scalability an
// objective of the debug solution; these generators drive the sweeps that
// measure it beyond the fixed T2 and USB models.
package synth

import (
	"fmt"
	"math/rand"

	"tracescale/internal/flow"
)

// Params controls flow generation.
type Params struct {
	// States per flow (>= 2; default 5).
	States int
	// Branch is the probability of adding a skip edge alongside the chain
	// (a branching DAG instead of a pure chain). Default 0.
	Branch float64
	// MaxWidth bounds message widths (uniform in [1, MaxWidth]; default 8).
	MaxWidth int
	// GroupProb is the chance a message wider than 2 bits gets a packing
	// subgroup (default 0).
	GroupProb float64
	// IPs is the number of IP blocks messages are routed between
	// (default 4).
	IPs int
}

func (p Params) withDefaults() Params {
	if p.States == 0 {
		p.States = 5
	}
	if p.MaxWidth == 0 {
		p.MaxWidth = 8
	}
	if p.IPs == 0 {
		p.IPs = 4
	}
	return p
}

// Flow generates one random flow with the given name. Generation is
// deterministic in rng.
func Flow(name string, p Params, rng *rand.Rand) (*flow.Flow, error) {
	p = p.withDefaults()
	if p.States < 2 {
		return nil, fmt.Errorf("synth: flow needs >= 2 states, got %d", p.States)
	}
	b := flow.NewBuilder(name)
	states := make([]string, p.States)
	for i := range states {
		states[i] = fmt.Sprintf("%s_s%d", name, i)
	}
	b.States(states...)
	b.Init(states[0])
	b.Stop(states[len(states)-1])

	ip := func() string { return fmt.Sprintf("IP%d", rng.Intn(p.IPs)) }
	mkMsg := func(i int) string {
		mname := fmt.Sprintf("%s_m%d", name, i)
		width := 1 + rng.Intn(p.MaxWidth)
		m := flow.Message{Name: mname, Width: width, Src: ip(), Dst: ip()}
		if width > 2 && rng.Float64() < p.GroupProb {
			gw := 1 + rng.Intn(width-1)
			m.Groups = []flow.Group{{Name: mname + "_g", Width: gw}}
		}
		b.Message(m)
		return mname
	}
	msgID := 0
	for i := 0; i+1 < p.States; i++ {
		b.Edge(states[i], states[i+1], mkMsg(msgID))
		msgID++
		// Optional skip edge i -> i+2 for DAG shape.
		if i+2 < p.States && rng.Float64() < p.Branch {
			b.Edge(states[i], states[i+2], mkMsg(msgID))
			msgID++
		}
	}
	return b.Build()
}

// Scenario generates flows flows and one legally indexed instance of each
// (index 1). Flow names are f0, f1, ...
func Scenario(flows int, p Params, rng *rand.Rand) ([]flow.Instance, error) {
	if flows < 1 {
		return nil, fmt.Errorf("synth: need >= 1 flow, got %d", flows)
	}
	out := make([]flow.Instance, flows)
	for i := range out {
		f, err := Flow(fmt.Sprintf("f%d", i), p, rng)
		if err != nil {
			return nil, err
		}
		out[i] = flow.Instance{Flow: f, Index: 1}
	}
	return out, nil
}

// Universe generates a scenario with exactly messages distinct messages
// spread across flows chain flows (skip edges are disabled so the count is
// exact; widths and routing still follow p). A few long chains keep the
// interleaved product polynomial — roughly (messages/flows + 1)^flows
// states — while the message universe grows into the hundreds: the regime
// where exhaustive enumeration trips its MaxCandidates guard but the
// knapsack, CELF, and branch-and-bound selectors keep working.
func Universe(messages, flows int, p Params, rng *rand.Rand) ([]flow.Instance, error) {
	if flows < 1 || messages < flows {
		return nil, fmt.Errorf("synth: need >= 1 flow and >= 1 message per flow (messages %d, flows %d)", messages, flows)
	}
	out := make([]flow.Instance, flows)
	base, extra := messages/flows, messages%flows
	for i := range out {
		m := base
		if i < extra {
			m++
		}
		fp := p
		fp.States = m + 1 // a chain of n states carries n-1 messages
		fp.Branch = 0
		f, err := Flow(fmt.Sprintf("u%d", i), fp, rng)
		if err != nil {
			return nil, err
		}
		out[i] = flow.Instance{Flow: f, Index: 1}
	}
	return out, nil
}

// Replicated generates count legally indexed instances of a single random
// flow — the workload that stresses indexing and product growth.
func Replicated(count int, p Params, rng *rand.Rand) ([]flow.Instance, error) {
	if count < 1 {
		return nil, fmt.Errorf("synth: need >= 1 instance, got %d", count)
	}
	f, err := Flow("rep", p, rng)
	if err != nil {
		return nil, err
	}
	out := make([]flow.Instance, count)
	for i := range out {
		out[i] = flow.Instance{Flow: f, Index: i + 1}
	}
	return out, nil
}

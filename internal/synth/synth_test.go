package synth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tracescale/internal/core"
	"tracescale/internal/interleave"
)

func TestFlowGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f, err := Flow("t", Params{States: 6, Branch: 0.5, MaxWidth: 10, GroupProb: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumStates() != 6 {
		t.Errorf("states = %d", f.NumStates())
	}
	if f.NumMessages() < 5 {
		t.Errorf("messages = %d, want >= 5 (chain)", f.NumMessages())
	}
	for _, m := range f.Messages() {
		if m.Width < 1 || m.Width > 10 {
			t.Errorf("width %d out of range", m.Width)
		}
		if m.Width > 2 && len(m.Groups) == 0 {
			t.Errorf("message %s lacks a group despite GroupProb 1", m.Name)
		}
	}
}

func TestFlowDeterministicInSeed(t *testing.T) {
	a, err := Flow("t", Params{States: 5, Branch: 0.3}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Flow("t", Params{States: 5, Branch: 0.3}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumMessages() != b.NumMessages() || len(a.Edges()) != len(b.Edges()) {
		t.Error("generation not deterministic")
	}
}

func TestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Flow("t", Params{States: 1}, rng); err == nil {
		t.Error("1-state flow accepted")
	}
	if _, err := Scenario(0, Params{}, rng); err == nil {
		t.Error("0-flow scenario accepted")
	}
	if _, err := Replicated(0, Params{}, rng); err == nil {
		t.Error("0-instance replication accepted")
	}
	if _, err := Universe(10, 0, Params{}, rng); err == nil {
		t.Error("0-flow universe accepted")
	}
	if _, err := Universe(2, 3, Params{}, rng); err == nil {
		t.Error("universe with fewer messages than flows accepted")
	}
}

// Universe delivers exactly the requested message count — the property the
// scalability sweeps rely on — while the chain shape keeps the interleaved
// product polynomial instead of exponential in the message count.
func TestUniverseExactMessageCount(t *testing.T) {
	for _, tc := range []struct{ messages, flows int }{
		{5, 1}, {10, 3}, {17, 4}, {120, 2},
	} {
		insts, err := Universe(tc.messages, tc.flows, Params{}, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("Universe(%d, %d): %v", tc.messages, tc.flows, err)
		}
		if len(insts) != tc.flows {
			t.Errorf("Universe(%d, %d) built %d flows", tc.messages, tc.flows, len(insts))
		}
		total := 0
		for _, in := range insts {
			total += in.Flow.NumMessages()
		}
		if total != tc.messages {
			t.Errorf("Universe(%d, %d) has %d messages, want exactly %d",
				tc.messages, tc.flows, total, tc.messages)
		}
	}
	// The 120-message two-flow family stays interleavable: ~61x61 product
	// states, not 2^120.
	insts, err := Universe(120, 2, Params{}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := interleave.New(insts)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() > 5000 {
		t.Errorf("120-message universe product has %d states — the chain shape stopped containing it", p.NumStates())
	}
}

func TestScenarioAndReplicatedInterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	insts, err := Scenario(3, Params{States: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := interleave.New(insts)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 4*4*4 {
		t.Errorf("product = %d states, want 64", p.NumStates())
	}
	reps, err := Replicated(3, Params{States: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interleave.New(reps); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated scenario survives the full selection pipeline
// and the knapsack matches the exhaustive optimum.
func TestGeneratedScenariosSelectCleanly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		insts, err := Scenario(1+rng.Intn(3), Params{
			States:    3 + rng.Intn(3),
			Branch:    rng.Float64() * 0.5,
			MaxWidth:  6,
			GroupProb: 0.5,
		}, rng)
		if err != nil {
			return false
		}
		p, err := interleave.New(insts)
		if err != nil {
			return false
		}
		e, err := core.NewEvaluator(p)
		if err != nil {
			return false
		}
		budget := 4 + rng.Intn(12)
		ex, errE := core.Select(e, core.Config{BufferWidth: budget, DisablePacking: true})
		kn, errK := core.Select(e, core.Config{BufferWidth: budget, Method: core.Knapsack, DisablePacking: true})
		if errE != nil || errK != nil {
			return (errE == nil) == (errK == nil)
		}
		return math.Abs(ex.SelectedGain-kn.SelectedGain) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package tracescale_test

import (
	"math"
	"testing"

	"tracescale"
)

// The package-level quickstart: reproduce the paper's worked example
// through the public facade only.
func TestFacadePipeline(t *testing.T) {
	f := tracescale.CacheCoherence()
	insts := []tracescale.Instance{{Flow: f, Index: 1}, {Flow: f, Index: 2}}
	if !tracescale.LegallyIndexed(insts) {
		t.Fatal("instances should be legally indexed")
	}
	p, err := tracescale.Interleave(insts)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 15 || p.NumEdges() != 18 {
		t.Fatalf("product = %d states / %d edges, want 15/18", p.NumStates(), p.NumEdges())
	}
	e, err := tracescale.NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tracescale.Select(e, tracescale.Config{BufferWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 2 || res.Selected[0] != "ReqE" || res.Selected[1] != "GntE" {
		t.Errorf("Selected = %v, want [ReqE GntE]", res.Selected)
	}
	if math.Abs(res.Gain-1.0729) > 1e-3 {
		t.Errorf("Gain = %.4f, want 1.073", res.Gain)
	}
	// Localize the paper's observation.
	traced := map[string]bool{"ReqE": true, "GntE": true}
	observed := []tracescale.IndexedMsg{
		{Name: "ReqE", Index: 1}, {Name: "GntE", Index: 1}, {Name: "ReqE", Index: 2},
	}
	loc, err := p.Localization(traced, observed, tracescale.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loc-1.0/6) > 1e-12 {
		t.Errorf("localization = %g, want 1/6", loc)
	}
}

func TestFacadeCustomFlowAndMethods(t *testing.T) {
	b := tracescale.NewFlow("burst")
	b.States("idle", "req", "done")
	b.Init("idle")
	b.Stop("done")
	b.Message(tracescale.Message{Name: "req", Width: 6, Src: "A", Dst: "B", Groups: []tracescale.Group{{Name: "hdr", Width: 2}}})
	b.Message(tracescale.Message{Name: "ack", Width: 2, Src: "B", Dst: "A"})
	b.Edge("idle", "req", "req")
	b.Edge("req", "done", "ack")
	f, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := tracescale.Interleave([]tracescale.Instance{{Flow: f, Index: 1}, {Flow: f, Index: 2}})
	if err != nil {
		t.Fatal(err)
	}
	e, err := tracescale.NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []tracescale.Method{tracescale.Exhaustive, tracescale.Knapsack, tracescale.Greedy} {
		res, err := tracescale.Select(e, tracescale.Config{BufferWidth: 4, Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Width > 4 {
			t.Errorf("%v: width %d over budget", m, res.Width)
		}
	}
	// With a 4-bit buffer, ack (2) is selected and req's hdr subgroup (2)
	// packs the leftover.
	res, err := tracescale.Select(e, tracescale.Config{BufferWidth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization != 1.0 {
		t.Errorf("utilization = %g, want 1 (ack + req.hdr)", res.Utilization)
	}
	if len(res.Packed) != 1 || res.Packed[0].Group != "hdr" {
		t.Errorf("Packed = %v", res.Packed)
	}
}

module tracescale

go 1.22

// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`), plus micro-benchmarks of the
// pipeline stages and ablations of the design choices called out in
// DESIGN.md. Quality metrics (gain, coverage, pruning) are attached to the
// ablation benchmarks via ReportMetric so regressions show up next to the
// timing.
package tracescale_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tracescale"
	"tracescale/internal/circuits"
	"tracescale/internal/core"
	"tracescale/internal/exp"
	"tracescale/internal/interleave"
	"tracescale/internal/netlist"
	"tracescale/internal/opensparc"
	"tracescale/internal/pipeline"
	"tracescale/internal/regress"
	"tracescale/internal/restore"
	"tracescale/internal/sigsel"
	"tracescale/internal/soc"
	"tracescale/internal/synth"
	"tracescale/internal/usb"
)

const benchSeed = 1

// ---- One benchmark per table and figure -------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if got := exp.Table2(); len(got) != 4 {
			b.Fatal("bad table 2")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table3(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table4(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table5(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table6(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.Table7(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig6(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Pipeline micro-benchmarks -----------------------------------------

func scenario3Evaluator(b *testing.B) *tracescale.Evaluator {
	b.Helper()
	s, err := opensparc.ScenarioByID(3)
	if err != nil {
		b.Fatal(err)
	}
	p, err := s.Interleaving()
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkInterleaveScenario3(b *testing.B) {
	s, err := opensparc.ScenarioByID(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Interleaving(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorScenario3(b *testing.B) {
	s, _ := opensparc.ScenarioByID(3)
	p, err := s.Interleaving()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewEvaluator(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectExhaustive(b *testing.B) {
	e := scenario3Evaluator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Select(e, core.Config{BufferWidth: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectKnapsack(b *testing.B) {
	e := scenario3Evaluator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Select(e, core.Config{BufferWidth: 32, Method: core.Knapsack}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectGreedy(b *testing.B) {
	e := scenario3Evaluator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Select(e, core.Config{BufferWidth: 32, Method: core.Greedy}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectCELF(b *testing.B) {
	e := scenario3Evaluator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Select(e, core.Config{BufferWidth: 32, Method: core.CELF}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectBranchBound(b *testing.B) {
	e := scenario3Evaluator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Select(e, core.Config{BufferWidth: 32, Method: core.BranchBound}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalization(b *testing.B) {
	e := scenario3Evaluator(b)
	p := e.Product()
	traced := map[string]bool{"piowcrd": true, "ncumcurd": true, "siincu": true}
	observed := []tracescale.IndexedMsg{
		{Name: "siincu", Index: 1},
		{Name: "piowcrd", Index: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ConsistentPaths(traced, observed, tracescale.Prefix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoCSimScenario1(b *testing.B) {
	s, _ := opensparc.ScenarioByID(1)
	sc := soc.Scenario{Name: s.Name, Launches: s.Launches(exp.InstancesPerFlow, 24)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := soc.Run(sc, soc.Config{Seed: benchSeed}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetlistSimUSB(b *testing.B) {
	n := usb.Design()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		netlist.Record(n, 48, benchSeed)
	}
}

func BenchmarkRestoreUSB(b *testing.B) {
	n := usb.Design()
	tr := netlist.Record(n, 48, benchSeed)
	tap, ok := n.NetID("rx_shift8")
	if !ok {
		b.Fatal("rx_shift8 missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := restore.Restore(tr, []int{tap}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSigSeTUSB(b *testing.B) {
	n := usb.Design()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sigsel.SigSeT(n, sigsel.SigSeTConfig{Budget: 32, Seed: benchSeed}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPRNetUSB(b *testing.B) {
	n := usb.Design()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sigsel.PRNet(n, sigsel.PRNetConfig{Budget: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations ----------------------------------------------------------

// Packing on/off: DESIGN.md calls out Step 3 as the utilization lever; the
// metric deltas quantify it per scenario.
func BenchmarkAblationPacking(b *testing.B) {
	for _, s := range opensparc.Scenarios() {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			var wp, wop *core.Result
			for i := 0; i < b.N; i++ {
				sel, err := exp.SelectScenario(s)
				if err != nil {
					b.Fatal(err)
				}
				wp, wop = sel.WP, sel.WoP
			}
			b.ReportMetric(wp.Utilization-wop.Utilization, "util-delta")
			b.ReportMetric(wp.Coverage-wop.Coverage, "cov-delta")
		})
	}
}

// Selector quality: exhaustive is the reference; knapsack must match it
// exactly (gain is additive) and greedy should be close.
func BenchmarkAblationSelector(b *testing.B) {
	e := scenario3Evaluator(b)
	ref, err := core.Select(e, core.Config{BufferWidth: 32, DisablePacking: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []core.Method{core.Exhaustive, core.Knapsack, core.Greedy} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res, err = core.Select(e, core.Config{BufferWidth: 32, Method: m, DisablePacking: true})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.SelectedGain/ref.SelectedGain, "gain-ratio")
		})
	}
}

// Restoration engine power: forward-only (typical SRR tooling) versus full
// combinational backward justification.
func BenchmarkAblationRestoreBackward(b *testing.B) {
	n := usb.Design()
	tr := netlist.Record(n, 48, benchSeed)
	taps := []int{}
	for _, name := range []string{"rx_shift8", "tx_shift7", "fifo5_3", "crc5_2"} {
		id, ok := n.NetID(name)
		if !ok {
			b.Fatalf("%s missing", name)
		}
		taps = append(taps, id)
	}
	for _, backward := range []bool{false, true} {
		backward := backward
		name := "forward-only"
		if backward {
			name = "with-backward"
		}
		b.Run(name, func(b *testing.B) {
			var srr float64
			for i := 0; i < b.N; i++ {
				res, err := restore.RestoreWith(tr, taps, restore.Options{Backward: backward})
				if err != nil {
					b.Fatal(err)
				}
				srr = res.SRR
			}
			b.ReportMetric(srr, "srr")
		})
	}
}

// Scenario scale: interleaving and selection cost versus instance count —
// the scalability objective of the paper's third contribution.
func BenchmarkAblationScale(b *testing.B) {
	f := tracescale.CacheCoherence()
	for _, k := range []int{2, 4, 6, 8} {
		k := k
		b.Run(string(rune('0'+k))+"-instances", func(b *testing.B) {
			insts := make([]tracescale.Instance, k)
			for i := range insts {
				insts[i] = tracescale.Instance{Flow: f, Index: i + 1}
			}
			for i := 0; i < b.N; i++ {
				p, err := tracescale.Interleave(insts)
				if err != nil {
					b.Fatal(err)
				}
				e, err := tracescale.NewEvaluator(p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tracescale.Select(e, tracescale.Config{BufferWidth: 2, Method: tracescale.Knapsack}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Synthetic sweeps: selection cost versus scenario size, driven by the
// workload generator (internal/synth).
func BenchmarkSweepFlows(b *testing.B) {
	for _, flows := range []int{2, 3, 4} {
		flows := flows
		b.Run(fmt.Sprintf("%d-flows", flows), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			insts, err := synth.Scenario(flows, synth.Params{States: 4, MaxWidth: 8, GroupProb: 0.3}, rng)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				p, err := tracescale.Interleave(insts)
				if err != nil {
					b.Fatal(err)
				}
				e, err := tracescale.NewEvaluator(p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tracescale.Select(e, tracescale.Config{BufferWidth: 16, Method: tracescale.Knapsack}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSweepMessages(b *testing.B) {
	// One long chain flow: message count grows linearly with states, and
	// exhaustive enumeration exponentially — knapsack stays flat.
	for _, states := range []int{8, 12, 16} {
		states := states
		b.Run(fmt.Sprintf("%d-states", states), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			insts, err := synth.Scenario(1, synth.Params{States: states, MaxWidth: 6}, rng)
			if err != nil {
				b.Fatal(err)
			}
			p, err := tracescale.Interleave(insts)
			if err != nil {
				b.Fatal(err)
			}
			e, err := tracescale.NewEvaluator(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tracescale.Select(e, tracescale.Config{BufferWidth: 16, Method: tracescale.Knapsack}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Regression suite throughput (the §4 testbench layer).
func BenchmarkRegressSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports, err := regress.RunSuite(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reports {
			if !r.Passed {
				b.Fatalf("%s failed: %v", r.Test, r.Violations)
			}
		}
	}
}

// SRR selection cost versus design size — the paper's §1 claim that
// SRR-based methods cannot scale to T2-class designs. Runtime grows
// superlinearly with flip-flop count while the application-level selector
// depends only on the scenario's message count.
func BenchmarkSigSeTScaling(b *testing.B) {
	for _, ffs := range []int{64, 128, 256} {
		ffs := ffs
		b.Run(fmt.Sprintf("%d-ffs", ffs), func(b *testing.B) {
			n, err := circuits.Generate(circuits.Params{FFs: ffs, ShiftFraction: 0.5}, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sigsel.SigSeT(n, sigsel.SigSeTConfig{Budget: 16, Cycles: 32, Seed: benchSeed}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Restoration cost versus design size (the other half of the scalability
// story: one restoration pass is what SigSeT evaluates hundreds of times).
func BenchmarkRestoreScaling(b *testing.B) {
	for _, ffs := range []int{64, 256, 1024} {
		ffs := ffs
		b.Run(fmt.Sprintf("%d-ffs", ffs), func(b *testing.B) {
			n, err := circuits.Generate(circuits.Params{FFs: ffs, ShiftFraction: 0.5}, rand.New(rand.NewSource(2)))
			if err != nil {
				b.Fatal(err)
			}
			tr := netlist.Record(n, 32, benchSeed)
			traced := n.FFs()[:8]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := restore.Restore(tr, traced); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Session layer and parallel enumeration ---------------------------

// Session reuse across a buffer-width sweep: "uncached" rebuilds the
// interleaving and evaluator for every width (the pre-Session pipeline);
// "session" pays for the analysis once per scenario and reruns only
// Steps 1-3 per budget.
func BenchmarkSessionReuse(b *testing.B) {
	s, err := opensparc.ScenarioByID(3)
	if err != nil {
		b.Fatal(err)
	}
	widths := []int{8, 16, 24, 32, 48, 64}

	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range widths {
				p, err := interleave.New(s.Instances())
				if err != nil {
					b.Fatal(err)
				}
				e, err := core.NewEvaluator(p)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.Select(e, core.Config{BufferWidth: w}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := pipeline.NewCache()
			for _, w := range widths {
				ses, err := c.Session(s.Instances())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ses.Select(core.Config{BufferWidth: w}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// Exhaustive enumeration over a ~2^20-mask synthetic workload, serial vs
// sharded across GOMAXPROCS workers. The two paths produce byte-identical
// Results (see internal/core's property tests); this measures the
// wall-clock difference only.
func BenchmarkSelectExhaustiveParallel(b *testing.B) {
	insts, err := synth.Scenario(1, synth.Params{States: 21, MaxWidth: 6}, rand.New(rand.NewSource(benchSeed)))
	if err != nil {
		b.Fatal(err)
	}
	p, err := interleave.New(insts)
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEvaluator(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Select(e, core.Config{BufferWidth: 40, Workers: v.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Usbcompare: the paper's §5.4 baseline study — run SRR-based (SigSeT) and
// PageRank-based (PRNet) gate-level signal selection against the
// application-level information-gain method on the bundled USB-function
// design, and report Table 4 plus the reconstruction and coverage
// aggregates. Uses the repository's gate-level substrate (internal
// packages); see examples/quickstart for the public-API path.
//
//	go run ./examples/usbcompare
package main

import (
	"fmt"
	"log"

	"tracescale/internal/exp"
	"tracescale/internal/netlist"
	"tracescale/internal/restore"
	"tracescale/internal/sigsel"
	"tracescale/internal/usb"
)

func main() {
	n := usb.Design()
	fmt.Printf("USB design: %d nets, %d flip-flops, %d primary inputs\n\n",
		n.N(), len(n.FFs()), len(n.Inputs()))

	res, err := exp.Table4(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-15s %-17s %-7s %-6s %s\n", "Signal", "Module", "SigSeT", "PRNet", "InfoGain")
	for _, r := range res.Rows {
		fmt.Printf("%-15s %-17s %-7s %-6s %s\n", r.Signal, r.Module, r.SigSeT, r.PRNet, r.InfoGain)
	}
	fmt.Printf("\ninterface reconstruction: SigSeT %.1f%%, PRNet %.1f%% (ours: traced directly)\n",
		100*res.SigSeTReconstruction, 100*res.PRNetReconstruction)
	fmt.Printf("flow-spec coverage:       InfoGain %.2f%%, SigSeT %.2f%%, PRNet %.2f%%\n",
		100*res.InfoGainCoverage, 100*res.SigSeTCoverage, 100*res.PRNetCoverage)

	// Why SRR loves internal state: one trace bit on a shift register
	// restores the whole chain, maximizing the State Restoration Ratio
	// while saying nothing about the system-level protocol.
	tap, ok := n.NetID("rx_shift8")
	if !ok {
		log.Fatal("rx_shift8 missing")
	}
	tr := netlist.Record(n, 48, 11)
	r, err := restore.Restore(tr, []int{tap})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntracing the single flip-flop rx_shift8 yields SRR %.1f "+
		"(restores %d state-bits from %d traced)\n", r.SRR, r.KnownFFStates, r.TracedStates)

	busBits := 0
	for _, bus := range usb.Buses {
		busBits += len(n.Bus(bus))
	}
	frac, err := sigsel.ReconstructionFraction(n, []int{tap}, usb.Buses, 48, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("...yet it reconstructs %.1f%% of the %d interface-message bits the "+
		"debugging flow actually needs\n", 100*frac, busBits)
}

// Quickstart: the paper's running example end to end through the public
// API — build the toy cache-coherence flow (Figure 1a), interleave two
// indexed instances (Figure 2), select trace messages for a 2-bit buffer
// (§3), and localize an observed trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tracescale"
)

func main() {
	// The flow: Init -ReqE-> Wait -GntE-> GntW -Ack-> Done, with GntW
	// atomic (while one agent holds the grant nobody else moves).
	b := tracescale.NewFlow("cachecoherence")
	b.States("Init", "Wait", "GntW", "Done")
	b.Init("Init")
	b.Stop("Done")
	b.Atomic("GntW")
	b.Message(tracescale.Message{Name: "ReqE", Width: 1, Src: "1", Dst: "Dir"})
	b.Message(tracescale.Message{Name: "GntE", Width: 1, Src: "Dir", Dst: "1"})
	b.Message(tracescale.Message{Name: "Ack", Width: 1, Src: "1", Dst: "Dir"})
	b.Chain([]string{"Init", "Wait", "GntW", "Done"}, []string{"ReqE", "GntE", "Ack"})
	f, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// A Session interleaves the two concurrent, legally indexed instances
	// and analyzes the product once; selections below are memoized per
	// Config.
	ses, err := tracescale.NewSession([]tracescale.Instance{
		{Flow: f, Index: 1},
		{Flow: f, Index: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	product := ses.Product()
	fmt.Printf("interleaved flow: %d states, %d edges, %v executions\n",
		product.NumStates(), product.NumEdges(), product.TotalPaths())

	// Select messages for a 2-bit trace buffer.
	res, err := ses.Select(tracescale.Config{BufferWidth: 2, KeepCandidates: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1 found %d feasible combinations\n", len(res.Candidates))
	fmt.Printf("step 2 selected %v: gain %.3f nats, coverage %.2f%%, utilization %.0f%%\n",
		res.Selected, res.Gain, 100*res.Coverage, 100*res.Utilization)

	// Debugging: the buffer recorded 1:ReqE, 1:GntE, 2:ReqE before the
	// failure. How many executions remain candidates?
	traced := map[string]bool{"ReqE": true, "GntE": true}
	observed := []tracescale.IndexedMsg{
		{Name: "ReqE", Index: 1},
		{Name: "GntE", Index: 1},
		{Name: "ReqE", Index: 2},
	}
	loc, err := product.Localization(traced, observed, tracescale.Prefix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed %v localizes execution to %.1f%% of paths\n", observed, 100*loc)
}

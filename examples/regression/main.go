// Regression: drive the fc1-style regression environment (§4 of the
// paper) against the golden T2 model and a buggy variant, with
// credit-based flow control and per-IP port contention switched on, and
// render the failing run's event timeline. Uses the repository's internal
// packages; see examples/quickstart for the public-API path.
//
//	go run ./examples/regression
package main

import (
	"fmt"
	"log"
	"os"

	"tracescale/internal/inject"
	"tracescale/internal/opensparc"
	"tracescale/internal/regress"
	"tracescale/internal/soc"
)

func main() {
	// The golden design passes the whole suite.
	reports, err := regress.RunSuite(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("golden design:")
	for _, r := range reports {
		fmt.Printf("  %-14s %s  %4d events, %5d cycles\n", r.Test, status(r.Passed), r.Events, r.EndCycle)
	}

	// Inject the paper's headline bug (33: the DMU never raises the Mondo
	// transfer request) and watch mondo_storm fail.
	bug, err := opensparc.BugByID(33)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninjected: %s\n", bug)
	rep, err := regress.Run(mustTest("mondo_storm"), 7, bug)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-14s %s\n", rep.Test, status(rep.Passed))
	for _, v := range rep.Violations {
		fmt.Printf("    ! %s\n", v)
	}

	// Backpressure study: the same scenario under credit-based flow
	// control and single-ported IPs takes longer but still completes.
	scenario, err := opensparc.ScenarioByID(1)
	if err != nil {
		log.Fatal(err)
	}
	sc := soc.Scenario{Name: scenario.Name, Launches: scenario.Launches(6, 20)}
	free, err := soc.Run(sc, soc.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	tight, err := soc.Run(sc, soc.Config{
		Seed:    7,
		Credits: opensparc.Credits(),
		Ports:   map[string]int{opensparc.DMU: 1, opensparc.NCU: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbackpressure: unconstrained %d cycles vs credited+ported %d cycles (same %d instances)\n",
		free.EndCycle, tight.EndCycle, tight.Completed)

	// A credit leak in action: bug 33 drops reqtot, which never returns
	// its DMU->SIU credit; with one credit on that link the whole Mondo
	// path starves.
	leaky, err := soc.Run(sc, soc.Config{
		Seed:      7,
		Credits:   opensparc.Credits(),
		Injectors: inject.Injectors(bug),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith the bug and credits, %d of %d instances hang; timeline:\n\n",
		len(leaky.Symptoms), tight.Completed)
	if err := soc.WriteTimeline(os.Stdout, leaky, 72); err != nil {
		log.Fatal(err)
	}
}

func status(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

func mustTest(name string) regress.Test {
	t, err := regress.TestByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

// T2scenario: the paper's headline workload — select trace messages for an
// OpenSPARC T2 usage scenario, run the transaction-level T2 simulator with
// an injected communication bug, and debug the failure from the trace
// buffer. This example uses the bundled T2 model and experiment harness
// (internal packages of this repository); see examples/quickstart and
// examples/customflow for programs against the public API alone.
//
//	go run ./examples/t2scenario
package main

import (
	"fmt"
	"log"

	"tracescale/internal/exp"
	"tracescale/internal/opensparc"
	"tracescale/internal/soc"
	"tracescale/internal/tbuf"
)

func main() {
	// Scenario 1: PIO reads and writes interleaved with Mondo interrupts
	// across NCU, DMU, SIU (Table 1).
	scenario, err := opensparc.ScenarioByID(1)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := exp.SelectScenario(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: flows %v\n", scenario.Name, scenario.FlowNames)
	fmt.Printf("selected: %v (+%d packed subgroups) — %.2f%% utilization, %.2f%% coverage\n\n",
		sel.WP.Selected, len(sel.WP.Packed), 100*sel.WP.Utilization, 100*sel.WP.Coverage)

	// Program a trace buffer from the selection and monitor a passing run
	// (Figure 4's setup: monitors convert interface activity into flow
	// messages in the buffer).
	var rules []tbuf.Rule
	for _, name := range sel.WP.Selected {
		m, _ := sel.Evaluator.MessageByName(name)
		rules = append(rules, tbuf.Rule{Message: m.Name, Width: m.Width, Bits: m.Width})
	}
	for _, g := range sel.WP.Packed {
		m, _ := sel.Evaluator.MessageByName(g.Message)
		rules = append(rules, tbuf.Rule{Message: g.Message, Width: m.Width, Bits: g.Width})
	}
	plan, err := tbuf.NewCapturePlan(rules)
	if err != nil {
		log.Fatal(err)
	}
	buf := tbuf.New(exp.BufferWidth, 256)
	mon := soc.NewMonitor(plan, buf, nil)

	golden, err := soc.Run(soc.Scenario{
		Name:     scenario.Name,
		Launches: scenario.Launches(8, 24),
	}, soc.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.Consume(golden.Events); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d events over %d cycles; buffer captured %d entries\n",
		len(golden.Events), golden.EndCycle, mon.Captured())
	fmt.Println("last trace lines:")
	entries := buf.Entries()
	for _, e := range entries[max(0, len(entries)-5):] {
		fmt.Println("  " + e.String())
	}

	// Now the buggy silicon: case study 2 — the NCU's interrupt decode is
	// broken and Mondo ack/nacks never appear.
	cs, err := opensparc.CaseStudyByID(2)
	if err != nil {
		log.Fatal(err)
	}
	run, err := exp.RunCase(cs, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbuggy design (bug %d): %s\n", cs.BugID, run.Buggy.Symptoms[0])
	fmt.Printf("debugging pruned %.1f%% of %d root causes; plausible:\n",
		100*run.Report.PrunedFraction, run.Report.TotalCauses)
	for _, c := range run.Report.Plausible {
		fmt.Printf("  [%s] %s\n", c.IP, c.Function)
	}
	fmt.Printf("path localization: %.3f%% of interleaved-flow executions\n", 100*run.LocWP)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

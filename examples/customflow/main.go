// Customflow: author your own SoC protocol flows against the public API —
// a DMA engine with a branching completion (success or retry) interleaved
// with a doorbell flow — then size the trace buffer and compare selection
// methods. Demonstrates branching DAG flows, message subgroups, packing,
// and the exhaustive/knapsack/greedy selectors.
//
//	go run ./examples/customflow
package main

import (
	"fmt"
	"log"

	"tracescale"
)

func dmaFlow() (*tracescale.Flow, error) {
	b := tracescale.NewFlow("dma")
	b.States("Idle", "Prog", "Busy", "Done", "Retry")
	b.Init("Idle")
	b.Stop("Done")
	b.Atomic("Busy") // the engine owns the bus while a burst is in flight
	b.Message(tracescale.Message{Name: "desc", Width: 24, Src: "CPU", Dst: "DMA",
		Groups: []tracescale.Group{
			{Name: "len", Width: 8},
			{Name: "chan", Width: 4},
		}})
	b.Message(tracescale.Message{Name: "go", Width: 2, Src: "CPU", Dst: "DMA"})
	b.Message(tracescale.Message{Name: "burst", Width: 16, Src: "DMA", Dst: "MEM",
		Groups: []tracescale.Group{{Name: "addrhi", Width: 6}}})
	b.Message(tracescale.Message{Name: "done", Width: 2, Src: "DMA", Dst: "CPU"})
	b.Message(tracescale.Message{Name: "nak", Width: 2, Src: "MEM", Dst: "DMA"})
	b.Edge("Idle", "Prog", "desc")
	b.Edge("Prog", "Busy", "go")
	b.Edge("Busy", "Done", "done")
	b.Edge("Busy", "Retry", "nak") // branching: the burst can be refused
	b.Edge("Retry", "Done", "burst")
	return b.Build()
}

func doorbellFlow() (*tracescale.Flow, error) {
	b := tracescale.NewFlow("doorbell")
	b.States("DIdle", "DRung", "DAcked")
	b.Init("DIdle")
	b.Stop("DAcked")
	b.Message(tracescale.Message{Name: "ring", Width: 4, Src: "CPU", Dst: "DMA"})
	b.Message(tracescale.Message{Name: "ringack", Width: 2, Src: "DMA", Dst: "CPU"})
	b.Chain([]string{"DIdle", "DRung", "DAcked"}, []string{"ring", "ringack"})
	return b.Build()
}

func main() {
	dma, err := dmaFlow()
	if err != nil {
		log.Fatal(err)
	}
	bell, err := doorbellFlow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dma: %d executions (branching DAG)\n", dma.NumExecutions())

	product, err := tracescale.Interleave([]tracescale.Instance{
		{Flow: dma, Index: 1},
		{Flow: dma, Index: 2}, // two DMA channels in flight
		{Flow: bell, Index: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	eval, err := tracescale.NewEvaluator(product)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interleaving: %d states, %v executions\n\n",
		product.NumStates(), product.TotalPaths())

	for _, width := range []int{8, 16, 32} {
		res, err := tracescale.Select(eval, tracescale.Config{BufferWidth: width})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d-bit buffer: select %v", width, res.Selected)
		if len(res.Packed) > 0 {
			fmt.Printf(" + packed %v", res.Packed)
		}
		fmt.Printf("\n              gain %.3f, coverage %.1f%%, utilization %.1f%%\n",
			res.Gain, 100*res.Coverage, 100*res.Utilization)
	}

	// The gain metric is additive, so the exact knapsack matches the
	// exhaustive search at a fraction of the cost; greedy is close.
	fmt.Println("\nmethod comparison (16-bit buffer, packing off):")
	for _, m := range []tracescale.Method{tracescale.Exhaustive, tracescale.Knapsack, tracescale.Greedy} {
		res, err := tracescale.Select(eval, tracescale.Config{
			BufferWidth: 16, Method: m, DisablePacking: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v gain %.4f  %v\n", m, res.SelectedGain, res.Selected)
	}
}

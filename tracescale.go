// Package tracescale selects trace messages for post-silicon use-case
// validation, implementing the methodology of Pal et al., "Application
// Level Hardware Tracing for Scaling Post-Silicon Debug" (DAC 2018).
//
// Given the transaction-level flows a usage scenario activates —
// message-labeled DAGs over the SoC's IPs — and a trace-buffer width
// budget, tracescale computes the interleaved flow of the concurrently
// executing (legally indexed) flow instances, scores candidate message
// combinations by mutual information gain over that interleaving, selects
// the best combination that fits the buffer, and packs leftover bits with
// subgroups of wider messages. The selected messages maximize debug value:
// flow-specification coverage correlates monotonically with the gain
// metric, and observed traces localize failing executions to a small
// fraction of the interleaving's paths.
//
// The basic pipeline:
//
//	b := tracescale.NewFlow("cachecoherence")
//	b.States("Init", "Wait", "GntW", "Done")
//	b.Init("Init")
//	b.Stop("Done")
//	b.Atomic("GntW")
//	b.Message(tracescale.Message{Name: "ReqE", Width: 1, Src: "1", Dst: "Dir"})
//	... // more messages and edges
//	f, err := b.Build()
//
//	session, err := tracescale.NewSession([]tracescale.Instance{
//		{Flow: f, Index: 1},
//		{Flow: f, Index: 2},
//	})
//	result, err := session.Select(tracescale.Config{BufferWidth: 32})
//
// result.Selected holds the message combination to trace, result.Packed
// the subgroups added by buffer packing, and result.Gain / result.Coverage
// its scores. A Session owns the scenario's interleaved flow and its
// gain analysis, and memoizes selection Results per Config; sessions are
// themselves cached by a content fingerprint of the instance set, so
// repeated analyses of the same scenario (width sweeps, several tables
// touching one workload) pay for interleaving once. The step-by-step
// Interleave / NewEvaluator / Select functions remain for callers that
// want explicit control. See the examples directory for complete
// programs, and cmd/paperbench for the harness that regenerates every
// table and figure of the paper's evaluation on the bundled OpenSPARC T2
// and USB models.
package tracescale

import (
	"context"

	"tracescale/internal/core"
	"tracescale/internal/flow"
	"tracescale/internal/interleave"
	"tracescale/internal/pipeline"
)

// Message is a protocol message exchanged between two IPs: Width bits of
// content carried from Src to Dst, optionally with named subgroups that
// trace-buffer packing may capture separately.
type Message = flow.Message

// Group is a named bit-field of a wider message.
type Group = flow.Group

// Flow is an immutable transaction flow: a DAG of flow states whose
// transitions are labeled with messages (Definition 1 of the paper).
type Flow = flow.Flow

// FlowBuilder constructs a Flow.
type FlowBuilder = flow.Builder

// Execution is a root-to-stop path of a flow (Definition 2).
type Execution = flow.Execution

// Instance is an indexed flow ⟨F, k⟩ (Definition 3): one of possibly many
// concurrent invocations of the same flow, distinguished by tag k.
type Instance = flow.Instance

// IndexedMsg is a message tagged with its instance index.
type IndexedMsg = flow.IndexedMsg

// Product is the interleaved flow of a set of legally indexed instances
// (Definition 5): the synchronized product automaton in which a component
// may step only while no other component occupies an atomic state.
type Product = interleave.Product

// MatchMode selects how observed traces constrain candidate executions
// during localization.
type MatchMode = interleave.MatchMode

// Localization match modes.
const (
	// Prefix treats the observation as the trace of a possibly incomplete
	// execution.
	Prefix = interleave.Prefix
	// Exact requires the full projection to equal the observation.
	Exact = interleave.Exact
)

// Evaluator scores message combinations over an interleaved flow.
type Evaluator = core.Evaluator

// Config parameterizes Select.
type Config = core.Config

// Method is the Step-2 search strategy.
type Method = core.Method

// Selection methods.
const (
	// Exhaustive enumerates every width-feasible combination (the paper's
	// Steps 1-2).
	Exhaustive = core.Exhaustive
	// Knapsack solves Step 2 exactly in polynomial time (the gain metric
	// is additive across messages).
	Knapsack = core.Knapsack
	// Greedy picks by gain density; fastest, near-optimal.
	Greedy = core.Greedy
	// MaxCoverage greedily maximizes flow-spec coverage directly (an
	// ablation baseline for the gain metric).
	MaxCoverage = core.MaxCoverage
	// CELF is Greedy with lazy marginal-gain evaluation: byte-identical
	// selections, strictly fewer gain evaluations.
	CELF = core.CELF
	// BranchBound is the exact lattice search: byte-identical to Exhaustive
	// wherever Exhaustive is feasible, and scales far past it.
	BranchBound = core.BranchBound
)

// ParseMethod maps a method name ("exhaustive", "knapsack", "greedy",
// "max-coverage", "celf", "branch-bound"; "" = Exhaustive) to its Method.
func ParseMethod(name string) (Method, error) { return core.ParseMethod(name) }

// MethodNames lists every registered selection method name.
func MethodNames() []string { return core.MethodNames() }

// Candidate is one scored message combination.
type Candidate = core.Candidate

// PackedGroup is a subgroup added by Step-3 packing.
type PackedGroup = core.PackedGroup

// Result is the outcome of the selection pipeline.
type Result = core.Result

// Session owns one scenario's analyzed interleaving — the Product and its
// Evaluator — and memoizes selection Results per Config. Results returned
// from a Session are shared and must be treated as read-only.
type Session = pipeline.Session

// NewFlow returns a builder for a flow with the given name.
func NewFlow(name string) *FlowBuilder { return flow.NewBuilder(name) }

// LegallyIndexed reports whether the instances are pairwise legally
// indexed (Definition 4).
func LegallyIndexed(instances []Instance) bool { return flow.LegallyIndexed(instances) }

// Interleave builds the interleaved flow of the given instances.
func Interleave(instances []Instance) (*Product, error) { return interleave.New(instances) }

// NewEvaluator analyzes an interleaved flow for message-combination
// scoring.
func NewEvaluator(p *Product) (*Evaluator, error) { return core.NewEvaluator(p) }

// Select runs the full three-step selection pipeline: enumerate feasible
// message combinations, pick the one with maximal mutual information gain,
// and pack leftover buffer bits with message subgroups.
func Select(e *Evaluator, cfg Config) (*Result, error) { return core.Select(e, cfg) }

// SelectContext is Select with cancellation: the exhaustive shard scan
// polls ctx and aborts early when it is cancelled. With an uncancelled
// context the Result is byte-identical to Select's.
func SelectContext(ctx context.Context, e *Evaluator, cfg Config) (*Result, error) {
	return core.SelectContext(ctx, e, cfg)
}

// NewSession returns the Session for the given instance set, building the
// interleaved flow and its evaluator on first use. Sessions are cached
// process-wide by a content fingerprint of the instances (flow structure
// plus indices), so two callers that independently construct equal
// scenarios share one analysis.
func NewSession(instances []Instance) (*Session, error) { return pipeline.For(instances) }

// CacheCoherence returns the paper's running example flow (Figure 1a),
// useful as a starting fixture.
func CacheCoherence() *Flow { return flow.CacheCoherence() }
